"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``index SPEC``
    Feasibility and election index of a network.
``elect SPEC``
    Run the full Theorem 3.1 pipeline (oracle -> simulate -> verify).
``spectrum SPEC``
    The advice-vs-time table across all milestones.
``quotient SPEC``
    The view quotient (what symmetry remains).
``sweep [--corpus C] [--task T] [--workers N] [--chunk-size K]``
    Run an experiment sweep through the parallel engine; ``--json FILE``
    dumps the canonical JSON-lines records.  With ``--out FILE`` the
    sweep *streams*: corpus entries are generated lazily, records are
    appended to ``FILE`` as they arrive, and ``--resume`` skips entries
    already recorded there — an interrupted sweep restarts where it died
    and the merged file is byte-identical to an uninterrupted run.
``conformance [--families F,G] [--schedules K] [--workers N] [--out FILE]``
    The differential oracle: every registered election algorithm under
    the synchronous, strict-wire and asynchronous models (the latter
    over ``K`` adversarial schedules), cross-checked per corpus entry;
    prints per-family and per-algorithm tables and exits nonzero on any
    disagreement.  ``--out``/``--resume`` stream record groups through
    the result store with kill/resume byte-identity.
``corpus list`` / ``corpus emit FAMILY[:count,seed=S,...]``
    Inspect the corpus-family registry / stream a family's graphs as
    JSON lines.
``bench [--quick] [--scenario S,T] [--out-dir DIR] [--check DIR]``
    The machine-readable perf harness: run named scenarios (refinement,
    sweep, strict, conformance) and emit canonical ``BENCH_<scenario>.json``
    records with speedups against the recorded seed baseline; ``--check``
    validates existing records (the CI schema gate).
``report [--out FILE] [--trend DB]``
    Regenerate the small-scale experiment report (markdown), or render
    the cross-run perf trajectory from a results warehouse.
``serve [--port P] [--shards N] [--cache FILE] [--warm STORE --warm-corpus SPEC]``
    The online query service (:mod:`repro.service`): a JSON HTTP API
    answering elect/index/advice/quotient requests, deduplicated through
    the canonical-form result cache; ``--shards N`` fans cold computes
    across N fingerprint-routed worker processes (the cache stays
    shared), ``--cache`` persists answers across restarts (JSONL, or a
    warehouse database by extension), ``--warm`` pre-populates from
    batch result stores, and ``--warm-warehouse`` does the same from a
    results warehouse with one join query; ``--slow-query-ms MS`` turns
    on the structured slow-query log (one JSON line per offending query).
``warehouse import|export|trend|register|info``
    The indexed sqlite results warehouse (:mod:`repro.warehouse`) under
    sweeps, conformance, the service cache and bench records; the JSONL/
    JSON files stay the wire formats with byte-identical round-trip.
``query TASK SPEC [--url URL]``
    Client for scripts/CI: POST one graph to a running service and print
    the JSON answer.
``profile [--trace-json F] [--cprofile F] [--telemetry DB] CMD...``
    Run any repro command with :mod:`repro.obs` instrumentation enabled:
    spans and metrics record across every process the command spawns,
    and can be exported as Chrome trace-event JSON (Perfetto), dumped as
    cProfile stats, or stored in a results warehouse ``telemetry`` run
    for ``repro report --trend``.
``obs export DB --trace-json FILE [--run ID]``
    Re-export span telemetry stored by ``profile --telemetry`` as Chrome
    trace-event JSON.

Graph SPECs
-----------
``name`` or ``name:a,b,key=val`` selects a generator with positional /
keyword integer arguments, e.g.::

    ring:8   necklace:5,3   lollipop:4,3   hk:6   random:20,extra_edges=10
    wheel:6  caterpillar is not spec-able (needs a list) — use @file.json

``@path.json`` loads a serialized port graph (see repro.graphs.to_json),
and ``-`` reads one from stdin.  Both accept either the plain canonical
dict or a ``{"name": ..., "graph": ...}`` envelope line as produced by
``repro corpus emit`` (of a multi-line file, the first entry is used).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.graphs import (
    PortGraph,
    clique,
    complete_binary_tree,
    cycle_with_leader_gadget,
    from_json,
    grid_torus,
    hypercube,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
    random_tree,
    ring,
    star,
    wheel,
)
from repro.lowerbounds import hk_graph, necklace

GENERATORS: Dict[str, Callable[..., PortGraph]] = {
    "ring": ring,
    "path": path_graph,
    "random-tree": random_tree,
    "clique": clique,
    "star": star,
    "wheel": wheel,
    "hypercube": hypercube,
    "torus": grid_torus,
    "lollipop": lollipop,
    "binary-tree": complete_binary_tree,
    "gadget-ring": cycle_with_leader_gadget,
    "random": random_connected_graph,
    "random-regular": random_regular,
    "hk": hk_graph,
    "necklace": necklace,
}


def _graph_from_text(text: str, source: str) -> PortGraph:
    """A graph from JSON text: the canonical dict, or the envelope line
    shape of ``repro corpus emit`` (``{"name": ..., "graph": ...}``); of
    a JSON-lines file, the first non-empty line is used."""
    import json

    from repro.graphs import from_payload

    try:
        data = json.loads(text)
    except ValueError:
        first = next((ln for ln in text.splitlines() if ln.strip()), "")
        try:
            data = json.loads(first)
        except ValueError:
            raise ReproError(f"{source}: not valid graph JSON") from None
    try:
        return from_payload(data)
    except ReproError as exc:
        raise ReproError(f"{source}: {exc}") from None


def parse_graph_spec(spec: str) -> PortGraph:
    """Parse a graph SPEC (see module docstring) into a PortGraph."""
    if spec == "-":
        return _graph_from_text(sys.stdin.read(), "stdin")
    if spec.startswith("@"):
        try:
            with open(spec[1:], "r", encoding="utf-8") as fh:
                return _graph_from_text(fh.read(), spec[1:])
        except OSError as exc:
            raise ReproError(f"cannot read graph file '{spec[1:]}': {exc}") from None
    name, _, argtext = spec.partition(":")
    if name not in GENERATORS:
        raise ReproError(
            f"unknown generator '{name}'; available: {', '.join(sorted(GENERATORS))}"
        )
    args: List[int] = []
    kwargs: Dict[str, int] = {}
    if argtext:
        for token in argtext.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                if "=" in token:
                    key, _, value = token.partition("=")
                    kwargs[key.strip()] = int(value)
                else:
                    args.append(int(token))
            except ValueError:
                raise ReproError(
                    f"graph spec '{spec}': argument '{token}' is not an integer"
                ) from None
    return GENERATORS[name](*args, **kwargs)


# ----------------------------------------------------------------------
def _cmd_index(args: argparse.Namespace) -> int:
    from repro.views import election_index, is_feasible

    g = parse_graph_spec(args.spec)
    print(f"n = {g.n}, m = {g.num_edges}, diameter = {g.diameter()}")
    if is_feasible(g):
        print(f"feasible; election index phi = {election_index(g)}")
        return 0
    print("INFEASIBLE: some nodes share all views; no deterministic "
          "algorithm can elect, with any advice")
    return 1


def _cmd_elect(args: argparse.Namespace) -> int:
    from repro.core import run_elect

    g = parse_graph_spec(args.spec)
    rec = run_elect(g)
    print(f"n = {rec.n}, phi = {rec.phi}")
    print(f"advice: {rec.advice_bits} bits")
    print(f"elected node {rec.leader} in {rec.election_time} rounds "
          f"({rec.total_messages} messages)")
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.core import run_elect, run_election_milestone, run_known_d_phi

    g = parse_graph_spec(args.spec)
    rows = []
    e = run_elect(g)
    rows.append(("phi (minimum)", e.election_time, e.advice_bits))
    kd = run_known_d_phi(g)
    rows.append(("D+phi", kd.election_time, kd.advice_bits))
    for m, label in ((1, "D+phi+c"), (2, "D+c*phi"), (3, "D+phi^c"), (4, "D+c^phi")):
        rec = run_election_milestone(g, m, c=args.c)
        rows.append((label, rec.election_time, rec.advice_bits))
    print(f"n = {g.n}, phi = {e.phi}, D = {g.diameter()}, c = {args.c}")
    print(format_table(["time regime", "rounds", "advice bits"], rows))
    return 0


def _cmd_quotient(args: argparse.Namespace) -> int:
    from repro.views.quotient import view_quotient

    g = parse_graph_spec(args.spec)
    q = view_quotient(g)
    print(f"n = {g.n}; {q.num_classes} view classes "
          f"(stabilized at depth {q.stabilization_depth})")
    if q.is_discrete:
        print("discrete: the graph is feasible")
    else:
        for i, members in enumerate(q.classes):
            if len(members) > 1:
                print(f"  class {i}: {len(members)} indistinguishable nodes "
                      f"{members[:8]}{'...' if len(members) > 8 else ''}")
    return 0


def parse_corpus_spec(spec: str) -> List:
    """Parse a non-family corpus SPEC into ``[(name, graph), ...]``.

    ``default`` or ``default:MAX_N``
        The mixed feasible corpus of :func:`corpus_default`.
    ``phi:PHI`` or ``phi:PHI:k1,k2,...``
        Graphs of prescribed election index (:func:`corpus_with_phi`).
    ``SPEC`` (anything else)
        A single graph spec as accepted by :func:`parse_graph_spec`.

    Registered corpus families are handled by :func:`open_corpus_stream`,
    which never materializes them.
    """
    from repro.analysis.sweep import corpus_default, corpus_with_phi

    head, _, rest = spec.partition(":")
    try:
        if head == "default":
            return corpus_default(int(rest)) if rest else corpus_default()
        if head == "phi":
            phi_text, _, sizes_text = rest.partition(":")
            if not phi_text:
                raise ReproError("corpus spec 'phi' needs a value, e.g. phi:2")
            phi = int(phi_text)
            if sizes_text:
                sizes = tuple(
                    int(s) for s in sizes_text.split(",") if s.strip()
                )
                return corpus_with_phi(phi, sizes=sizes)
            return corpus_with_phi(phi)
    except ValueError:
        raise ReproError(
            f"corpus spec '{spec}': arguments must be integers"
        ) from None
    return [(spec, parse_graph_spec(spec))]


def iter_emitted_corpus(path: str):
    """Lazily re-open a ``repro corpus emit`` JSONL file (or any file of
    graph-dict lines) as a ``(name, graph)`` stream — the bridge that
    lets sweeps and service warming consume emitted corpora.

    A file holding exactly one plain graph (the historical ``@file.json``
    single-graph spec, one- or multi-line) keeps its legacy entry name
    ``@<path>``, so result stores written before this stream existed stay
    resumable; envelope lines always use their embedded name, and files
    of several plain graphs name entries ``<path>:<lineno>``."""
    import json

    from repro.graphs import from_payload, is_graph_envelope

    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read corpus file '{path}': {exc}") from None
    with fh:
        pending = None  # a first plain-graph line, held back one line to
        # see whether the file is a single legacy graph or a JSONL stream
        first = True
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                if first:
                    # not JSONL: one (possibly multi-line) JSON document
                    # holding a single graph — the legacy @file.json spec
                    yield f"@{path}", _graph_from_text(line + fh.read(), path)
                    return
                raise ReproError(
                    f"{path}:{lineno}: not a valid corpus JSON line"
                ) from None
            if pending is not None:
                yield pending
                pending = None
            try:
                graph = from_payload(data)
            except ReproError as exc:
                raise ReproError(f"{path}:{lineno}: {exc}") from None
            if is_graph_envelope(data):
                name = data.get("name") or f"{path}:{lineno}"
                yield str(name), graph
            else:
                entry = (f"{path}:{lineno}", graph)
                if first:
                    pending = entry  # defer: alone it keeps the legacy name
                else:
                    yield entry
            first = False
        if pending is not None:
            # the file held exactly one plain graph: legacy spec name
            yield f"@{path}", pending[1]


def open_corpus_stream(spec: str):
    """Open any corpus SPEC as ``(lazy iterator, size hint or None)``.

    Family specs (``circulants:500,seed=3``; see ``repro corpus list``)
    stream one graph at a time; ``@path.jsonl`` re-opens a ``corpus
    emit`` file; the legacy specs of :func:`parse_corpus_spec` are small
    and are simply wrapped.
    """
    from repro.corpus import is_family_spec, parse_family_spec

    if spec.startswith("@"):
        return iter_emitted_corpus(spec[1:]), None
    if is_family_spec(spec):
        family, count, seed, params = parse_family_spec(spec)
        return family.generate(count, seed=seed, **params), count
    corpus = parse_corpus_spec(spec)
    if not corpus:
        raise ReproError(f"corpus spec '{spec}' produced no graphs")
    return iter(corpus), len(corpus)


def _corpus_family_name(spec: str) -> Optional[str]:
    """The family name of a family-spec corpus (``circulants:200,seed=3``
    -> ``circulants``), or None — the constant ``family`` column a
    warehouse-backed sweep tags its records with."""
    from repro.corpus import is_family_spec, parse_family_spec

    if is_family_spec(spec):
        return parse_family_spec(spec)[0].name
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.analysis.sweep import sweep_to_store
    from repro.engine import (
        EngineConfig,
        open_result_store,
        records_table,
        records_to_jsonl,
        run_stream,
    )

    if args.resume and not args.out:
        raise ReproError("--resume requires --out FILE (the store to resume)")
    if args.out and args.json_out:
        raise ReproError(
            "--json and --out are mutually exclusive: --out already writes "
            "the canonical JSON-lines records (incrementally)"
        )
    corpus_iter, size_hint = open_corpus_stream(args.corpus)
    size_text = f"{size_hint} graphs" if size_hint is not None else "streamed"
    print(f"task = {args.task}, corpus = {args.corpus} ({size_text}), "
          f"workers = {args.workers}")

    if args.out:
        # streaming path: lazy corpus -> engine -> append-only store
        # (JSONL file or, by extension, a warehouse dataset)
        with open_result_store(
            args.out,
            resume=args.resume,
            dataset=args.dataset,
            family=_corpus_family_name(args.corpus),
        ) as store:
            ran, skipped = sweep_to_store(
                corpus_iter,
                args.task,
                store,
                workers=args.workers,
                chunk_size=args.chunk_size,
            )
        print(f"{ran} records appended to {args.out}"
              + (f" ({skipped} already recorded, skipped)" if skipped else ""))
        return 0

    records = list(
        run_stream(
            corpus_iter,
            args.task,
            EngineConfig(workers=args.workers, chunk_size=args.chunk_size),
        )
    )
    if not records:
        raise ReproError(f"corpus spec '{args.corpus}' produced no graphs")
    # nested fields (e.g. the per-algorithm list of the `messages` task)
    # only render usefully in the JSON output, not in a fixed-width table
    scalar_keys = {
        key
        for r in records
        for key, value in r.items()
        if not isinstance(value, (list, dict))
    }
    columns = ["name"] + sorted(scalar_keys - {"task", "name"})
    print(format_table(columns, records_table(records, columns)))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(records_to_jsonl(records))
        print(f"records written to {args.json_out}")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from itertools import chain

    from repro.analysis import (
        algorithm_table,
        family_table,
        format_table,
        summarize_conformance,
    )
    from repro.analysis.sweep import sweep_to_store
    from repro.conformance import conformance_task_name
    from repro.corpus import get_family
    from repro.engine import (
        EngineConfig,
        load_records,
        open_result_store,
        run_stream,
    )

    if args.resume and not args.out:
        raise ReproError("--resume requires --out FILE (the store to resume)")
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    if not families:
        raise ReproError("--families needs at least one corpus family")
    streams = [
        get_family(fam).generate(args.count, seed=args.seed) for fam in families
    ]
    corpus_iter = chain.from_iterable(streams)
    task = conformance_task_name(schedules=args.schedules, seed=args.seed)
    print(
        f"task = {task}, families = {', '.join(families)} "
        f"({args.count} entries each), workers = {args.workers}"
    )

    if args.out:
        # multi-family stream: a warehouse store derives each record's
        # family column from its entry name's family prefix
        def family_of(name: str) -> Optional[str]:
            for fam in families:
                if name.startswith(fam + "-"):
                    return fam
            return None

        with open_result_store(
            args.out,
            resume=args.resume,
            dataset=args.dataset,
            family=family_of,
        ) as store:
            ran, skipped = sweep_to_store(
                corpus_iter,
                task,
                store,
                workers=args.workers,
                chunk_size=args.chunk_size,
            )
        print(f"{ran} records appended to {args.out}"
              + (f" ({skipped} entries already recorded, skipped)"
                 if skipped else ""))
        # a store may hold sweeps of other parameterizations (different
        # task strings); summarize only the one just run
        records = (
            r for r in load_records(args.out) if r.get("task") == task
        )
    else:
        records = run_stream(
            corpus_iter,
            task,
            EngineConfig(workers=args.workers, chunk_size=args.chunk_size),
        )

    summary = summarize_conformance(records)
    columns, rows = family_table(summary)
    print(format_table(columns, rows))
    print()
    columns, rows = algorithm_table(summary)
    print(format_table(columns, rows))
    print(
        f"\n{summary.entries} entries ({summary.feasible} feasible), "
        f"{summary.cells} algorithm x model x schedule cells"
    )
    if summary.clean:
        print("conformance: zero disagreements")
        return 0
    print(
        f"conformance: {summary.disagreements} DISAGREEMENTS in entries "
        f"{summary.disagreement_entries[:10]}"
    )
    return 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.corpus import iter_corpus, list_families

    if args.corpus_command == "list":
        rows = [
            (
                fam.name,
                fam.feasibility,
                ", ".join(f"{k}={v}" for k, v in sorted(fam.params.items())),
                fam.description,
            )
            for fam in list_families()
        ]
        print(format_table(["family", "feasibility", "params", "description"],
                           rows))
        return 0

    # emit: stream one {"name": ..., "graph": ...} JSON line per entry
    import json

    from repro.graphs import to_dict

    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    try:
        count = 0
        for name, g in iter_corpus(args.family):
            line = json.dumps(
                {"name": name, "graph": to_dict(g)},
                sort_keys=True,
                separators=(",", ":"),
            )
            out.write(line + "\n")
            count += 1
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"{count} graphs written to {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.bench import run_from_args

    return run_from_args(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from itertools import chain

    from repro.service import (
        ResultCache,
        ServiceCore,
        make_server,
        serve_until_shutdown,
        warm_from_stores,
        warm_from_warehouse,
    )

    if args.warm and not args.warm_corpus:
        raise ReproError(
            "--warm STORE needs --warm-corpus SPEC (the corpus the store "
            "was swept over, e.g. a family spec or @emitted.jsonl) to "
            "recover the graphs behind the store's entry names"
        )
    if args.warm_corpus and not args.warm:
        raise ReproError(
            "--warm-corpus has no effect without --warm STORE (the result "
            "store holding the records to pre-populate from)"
        )
    if args.shards < 0:
        raise ReproError(f"--shards must be >= 0, got {args.shards}")
    cache = ResultCache(path=args.cache, capacity=args.capacity)
    core = ServiceCore(
        cache,
        batch_chunk_size=args.chunk_size,
        shards=args.shards,
        slow_query_threshold_s=(
            args.slow_query_ms / 1000.0
            if args.slow_query_ms is not None
            else None
        ),
    )
    if cache.persisted:
        print(f"cache: {cache.persisted} persisted entries loaded from "
              f"{args.cache}")
    if args.warm:
        streams = [open_corpus_stream(spec)[0] for spec in args.warm_corpus]
        warmed, skipped = warm_from_stores(
            cache, args.warm, chain.from_iterable(streams)
        )
        print(f"warm: {warmed} entries from {len(args.warm)} store(s)"
              + (f" ({skipped} records skipped)" if skipped else ""))
    for db in args.warm_warehouse:
        warmed = warm_from_warehouse(cache, db)
        print(f"warm: {warmed} entries joined from warehouse {db}")
    server = make_server(core, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    shard_note = (
        f"{args.shards} shard workers" if args.shards else "in-process compute"
    )
    print(f"serving on http://{host}:{port} "
          f"(tasks: {', '.join(core.tasks)}; {shard_note}; Ctrl-C to stop)",
          flush=True)
    serve_until_shutdown(server, install_signal_handlers=True)
    if args.cache:
        print(f"cache: {cache.persisted} entries persisted to {args.cache}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request

    from repro.graphs import to_dict

    g = parse_graph_spec(args.spec)
    url = args.url.rstrip("/") + f"/v1/{args.task}"
    body = json.dumps({"graph": to_dict(g)}).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as resp:
            payload = json.load(resp)
    except urllib.error.HTTPError as exc:
        try:
            detail = json.load(exc)
        except ValueError:
            detail = {"error": "HTTPError", "detail": str(exc)}
        raise ReproError(
            f"service rejected the query (HTTP {exc.code}): "
            f"{detail.get('error')}: {detail.get('detail')}"
        ) from None
    except urllib.error.URLError as exc:
        raise ReproError(
            f"no service reachable at {args.url} ({exc.reason}); start one "
            f"with `repro serve`"
        ) from None
    out = payload["record"] if args.record_only else payload
    print(json.dumps(out, sort_keys=True, separators=(",", ":")))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trend:
        from repro.warehouse import Warehouse, render_trend

        with Warehouse(args.trend) as wh:
            text = render_trend(wh) + "\n"
    else:
        from repro.analysis.report import generate_report

        text = generate_report()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    from repro.warehouse import (
        Warehouse,
        export_bench,
        export_dataset,
        import_file,
        register_corpus_graphs,
        render_trend,
    )

    if args.warehouse_command == "import":
        with Warehouse(args.db) as wh:
            # a labeled import is one provenance row (one trend column),
            # however many files it covers; unlabeled files each get
            # their own run named after the file
            run_id = (
                wh.begin_run("import", args.label) if args.label else None
            )
            for path in args.files:
                fmt, dataset, count = import_file(
                    wh,
                    path,
                    fmt=args.format,
                    dataset=args.dataset,
                    run_id=run_id,
                )
                print(f"{path}: {count} {fmt} record(s) -> "
                      f"dataset '{dataset}'")
            if run_id is not None:
                wh.finish_run(run_id)
        return 0

    if args.warehouse_command == "export":
        with Warehouse(args.db) as wh:
            if args.bench_dir:
                for path in export_bench(wh, args.bench_dir, run_id=args.run):
                    print(path)
                return 0
            if not (args.dataset and args.out):
                raise ReproError(
                    "export needs DATASET and OUT (JSONL round-trip), or "
                    "--bench DIR for BENCH_*.json records"
                )
            lines = export_dataset(wh, args.dataset, args.out)
        print(f"{lines} line(s) written to {args.out}")
        return 0

    if args.warehouse_command == "trend":
        with Warehouse(args.db) as wh:
            print(render_trend(wh))
        return 0

    if args.warehouse_command == "register":
        corpus_iter, _hint = open_corpus_stream(args.corpus)
        with Warehouse(args.db) as wh:
            count = register_corpus_graphs(wh, args.dataset, corpus_iter)
        print(f"{count} graph(s) registered for dataset '{args.dataset}'")
        return 0

    # info
    from repro.analysis import format_table

    with Warehouse(args.db) as wh:
        rows = wh.datasets()
        if rows:
            print(format_table(["dataset", "kind", "records"], rows))
        else:
            print("(no datasets)")
        runs = wh.runs()
        print(f"\n{len(runs)} run(s), {wh.registered_graphs()} registered "
              f"graph(s)")
        for run in runs[-10:]:
            label = f" '{run['label']}'" if run["label"] else ""
            finished = (
                f"finished {run['finished_at']}"
                if run["finished_at"]
                else "(unfinished)"
            )
            print(f"  run {run['id']}: {run['kind']}{label} "
                  f"started {run['started_at']} {finished}")
        print(f"integrity: {wh.integrity_check()}")
    return 0


# ----------------------------------------------------------------------
def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs

    cmd = list(args.cmd)
    if cmd[:1] == ["--"]:  # `repro profile -- sweep --workers 4`
        cmd = cmd[1:]
    if not cmd:
        raise ReproError(
            "profile needs a repro command to run, e.g. "
            "`repro profile elect ring:8`"
        )
    if cmd[0] == "profile":
        raise ReproError("profile cannot wrap itself")

    profiler = None
    if args.cprofile:
        import cProfile

        profiler = cProfile.Profile()
    obs.reset()
    obs.enable()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            code = main(cmd)
        finally:
            if profiler is not None:
                profiler.disable()
        events = obs.trace_events()
        snapshot = obs.take_snapshot()
    finally:
        obs.disable()

    log = sys.stderr  # keep the wrapped command's stdout clean
    print(
        f"profile: {len(events)} span(s) from `repro {' '.join(cmd)}` "
        f"(exit {code})",
        file=log,
    )
    if args.trace_json:
        count = obs.write_chrome_trace(args.trace_json, events)
        print(
            f"profile: {count} trace event(s) -> {args.trace_json} "
            f"(load in Perfetto / chrome://tracing)",
            file=log,
        )
    if args.cprofile:
        assert profiler is not None
        profiler.dump_stats(args.cprofile)
        print(
            f"profile: cProfile stats -> {args.cprofile} "
            f"(inspect with `python -m pstats {args.cprofile}`)",
            file=log,
        )
    if args.telemetry:
        from repro.warehouse import Warehouse

        with Warehouse(args.telemetry) as wh:
            run_id = wh.begin_run("profile", args.label)
            rows = wh.append_telemetry(
                run_id, snapshot=snapshot, events=events
            )
            wh.finish_run(run_id)
        print(
            f"profile: {rows} telemetry row(s) -> {args.telemetry} "
            f"(run {run_id}; chart with `repro report --trend`)",
            file=log,
        )
    return code


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import write_chrome_trace
    from repro.warehouse import Warehouse

    with Warehouse(args.db) as wh:
        rows = wh.telemetry_rows(run_id=args.run, kind="span")
    events = [row["value"] for row in rows]
    if not events:
        where = f"run {args.run} of {args.db}" if args.run else args.db
        raise ReproError(
            f"no span telemetry in {where}; record some with "
            f"`repro profile --telemetry {args.db} CMD...`"
        )
    count = write_chrome_trace(args.trace_json, events)
    print(f"{count} trace event(s) written to {args.trace_json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leader election with advice in anonymous networks "
        "(Dieudonné & Pelc, SPAA 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("index", help="feasibility and election index")
    p.add_argument("spec", help="graph spec, e.g. necklace:5,3 or @graph.json")
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("elect", help="run the minimum-time election pipeline")
    p.add_argument("spec")
    p.set_defaults(func=_cmd_elect)

    p = sub.add_parser("spectrum", help="advice-vs-time table")
    p.add_argument("spec")
    p.add_argument("--c", type=int, default=2, help="the constant c > 1")
    p.set_defaults(func=_cmd_spectrum)

    p = sub.add_parser("quotient", help="view quotient / symmetry diagnosis")
    p.add_argument("spec")
    p.set_defaults(func=_cmd_quotient)

    p = sub.add_parser(
        "sweep", help="run an experiment sweep through the parallel engine"
    )
    p.add_argument(
        "--corpus", default="default",
        help="default[:MAX_N], phi:PHI[:k1,k2,...], a family spec, "
        "@emitted.jsonl, or a single graph spec",
    )
    p.add_argument(
        "--task", default="elect",
        help="engine task: elect, advice, index, quotient, messages, "
        "ablation",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; results are identical either way)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None,
        help="corpus entries per chunk (the view-cache lifetime)",
    )
    p.add_argument(
        "--json", dest="json_out", default=None,
        help="also write canonical JSON-lines records to this file",
    )
    p.add_argument(
        "--out", default=None,
        help="stream records into this store instead of printing a table "
        "(corpus entries are generated lazily; memory stays bounded); a "
        ".sqlite/.db extension selects the warehouse backend",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --out: skip entries already recorded in the store, so an "
        "interrupted sweep restarts where it died",
    )
    p.add_argument(
        "--dataset", default="sweep",
        help="with a warehouse --out: the dataset to write (default: sweep)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "conformance",
        help="differential oracle: all algorithms x all sim models x "
        "adversarial schedules over corpus families",
    )
    p.add_argument(
        "--families", default="tori,random-trees,lifts",
        help="comma-separated corpus families (see `repro corpus list`)",
    )
    p.add_argument(
        "--count", type=int, default=20,
        help="corpus entries per family (prefix-stable per the registry)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="seed for both the corpus streams and the schedule roster",
    )
    p.add_argument(
        "--schedules", type=int, default=3,
        help="adversarial async schedules per entry (deterministic roster)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (records identical at any worker count)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None,
        help="corpus entries per chunk (the view-cache lifetime)",
    )
    p.add_argument(
        "--out", default=None,
        help="stream record groups into this store (JSONL, or a warehouse "
        "database by extension)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --out: skip entries whose record group is already "
        "complete in the store (partial groups are re-run in full)",
    )
    p.add_argument(
        "--dataset", default="conformance",
        help="with a warehouse --out: the dataset to write "
        "(default: conformance)",
    )
    p.set_defaults(func=_cmd_conformance)

    p = sub.add_parser(
        "corpus", help="inspect or emit the registered corpus families"
    )
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)
    pl = corpus_sub.add_parser("list", help="table of registered families")
    pl.set_defaults(func=_cmd_corpus)
    pe = corpus_sub.add_parser(
        "emit", help="stream a family's (name, graph) entries as JSON lines"
    )
    pe.add_argument(
        "family",
        help="family spec, e.g. circulants:200,seed=3 (see `repro corpus list`)",
    )
    pe.add_argument("--out", default=None, help="write to this file instead "
                    "of stdout")
    pe.set_defaults(func=_cmd_corpus)

    p = sub.add_parser(
        "bench",
        help="run perf scenarios, emit machine-readable BENCH_*.json records",
    )
    # flags stay stdlib-only here so building the parser never imports the
    # analysis/engine tree; _cmd_bench defers that to execution time
    p.add_argument(
        "--scenario", default=None,
        help="comma-separated scenario names (default: all registered)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="small workloads for smoke/CI (recorded as quick mode)",
    )
    p.add_argument(
        "--out-dir", default="benchmarks/out",
        help="directory for BENCH_<scenario>.json records",
    )
    p.add_argument(
        "--baseline", default="benchmarks/baseline_seed.json",
        help="baseline timings file for speedup computation (skipped if absent)",
    )
    p.add_argument(
        "--record-baseline", default=None, metavar="FILE",
        help="measure and write/update the baseline file instead of records",
    )
    p.add_argument(
        "--check", default=None, metavar="DIR",
        help="only validate the BENCH_*.json records under DIR, then exit",
    )
    p.add_argument(
        "--warehouse", default=None, metavar="DB",
        help="also store the records in this results warehouse under one "
        "labeled run (the rows `repro report --trend` charts)",
    )
    p.add_argument(
        "--label", default=None,
        help="with --warehouse: the run label shown as the trend column "
        "header (e.g. a PR number or commit)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the online query service (canonical-form result cache)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8008,
        help="listen port (0 picks a free one; the chosen port is printed)",
    )
    p.add_argument(
        "--cache", default=None, metavar="FILE",
        help="persist the result cache to this file: JSONL (reloaded — with "
        "torn-tail repair — on restart), or a warehouse database by "
        ".sqlite/.db extension (indexed rows, shared with batch sweeps)",
    )
    p.add_argument(
        "--capacity", type=int, default=4096,
        help="in-memory LRU entries (the persistence tier is unbounded)",
    )
    p.add_argument(
        "--warm", action="append", default=[], metavar="STORE",
        help="pre-populate from this sweep/conformance result store "
        "(repeatable; needs --warm-corpus for the graphs)",
    )
    p.add_argument(
        "--warm-corpus", action="append", default=[], metavar="SPEC",
        help="corpus the warm stores were swept over: a family spec "
        "(circulants:200,seed=3) or @emitted.jsonl (repeatable)",
    )
    p.add_argument(
        "--warm-warehouse", action="append", default=[], metavar="DB",
        help="pre-populate from a results warehouse with one join query — "
        "no corpus needed, the warehouse stored each entry's content "
        "address at sweep time (repeatable)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None,
        help="corpus entries per engine chunk on the /v1/batch path",
    )
    p.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="fingerprint-sharded compute worker processes: cold queries "
        "route to int(fingerprint[:16], 16) %% N, each worker owning its "
        "own view-cache universe while the result cache (and any warm "
        "tier) stays shared in the serving process; 0 computes in-process",
    )
    p.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="structured slow-query log: queries at or over this latency "
        "emit one JSON line to stderr (task, fingerprint, cache tier, "
        "per-phase timings)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "query", help="query a running service (client for scripts/CI)"
    )
    p.add_argument(
        "task", help="service task: elect, index, advice or quotient"
    )
    p.add_argument(
        "spec",
        help="graph spec (generator, @file.json, or - for stdin; accepts "
        "corpus-emit envelopes)",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8008",
        help="base URL of the service",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0,
        help="request timeout in seconds",
    )
    p.add_argument(
        "--record", dest="record_only", action="store_true",
        help="print only the cached engine record, not the full response "
        "envelope (fingerprint, cache flag, relabeling)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("report", help="regenerate the experiment report")
    p.add_argument("--out", default=None, help="write markdown to this file")
    p.add_argument(
        "--trend", default=None, metavar="DB",
        help="render the cross-run perf trajectory from this results "
        "warehouse instead of the experiment report",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "warehouse",
        help="the indexed results warehouse: import/export the JSONL/JSON "
        "wire formats, render the perf trend, inspect datasets",
    )
    wh_sub = p.add_subparsers(dest="warehouse_command", required=True)

    pi = wh_sub.add_parser(
        "import",
        help="import result stores / cache files / BENCH records "
        "(byte-identical round-trip with export)",
    )
    pi.add_argument("db", help="warehouse database (created if absent)")
    pi.add_argument("files", nargs="+", help="JSONL stores, cache files, "
                    "or BENCH_*.json records")
    pi.add_argument(
        "--format", default=None, choices=("store", "cache", "bench"),
        help="file format (default: sniffed from the first line)",
    )
    pi.add_argument(
        "--dataset", default=None,
        help="target dataset (default: the file's basename; bench records "
        "always land in 'bench')",
    )
    pi.add_argument("--label", default=None, help="provenance run label")
    pi.set_defaults(func=_cmd_warehouse)

    pe = wh_sub.add_parser(
        "export", help="write a dataset back to its JSONL/JSON wire format"
    )
    pe.add_argument("db")
    pe.add_argument("dataset", nargs="?", help="dataset to export")
    pe.add_argument("out", nargs="?", help="output JSONL file")
    pe.add_argument(
        "--bench", dest="bench_dir", default=None, metavar="DIR",
        help="instead: write BENCH_*.json files for one bench run",
    )
    pe.add_argument(
        "--run", type=int, default=None,
        help="with --bench: the run id (default: the latest bench run)",
    )
    pe.set_defaults(func=_cmd_warehouse)

    pt = wh_sub.add_parser(
        "trend", help="the cross-run bench trajectory as one table"
    )
    pt.add_argument("db")
    pt.set_defaults(func=_cmd_warehouse)

    pr = wh_sub.add_parser(
        "register",
        help="register a corpus's content addresses for a dataset swept "
        "before the warehouse existed (one stream, then warming is a join)",
    )
    pr.add_argument("db")
    pr.add_argument("dataset", help="dataset whose entry names to cover")
    pr.add_argument("corpus", help="corpus spec the dataset was swept over")
    pr.set_defaults(func=_cmd_warehouse)

    pn = wh_sub.add_parser(
        "info", help="datasets, runs, graph registrations, integrity check"
    )
    pn.add_argument("db")
    pn.set_defaults(func=_cmd_warehouse)

    p = sub.add_parser(
        "profile",
        help="run any repro command with obs instrumentation on: spans + "
        "metrics, optional Chrome trace / cProfile / warehouse telemetry",
    )
    p.add_argument(
        "--trace-json", default=None, metavar="FILE",
        help="write the recorded spans as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    p.add_argument(
        "--cprofile", default=None, metavar="FILE",
        help="also run the command under cProfile and dump stats to FILE",
    )
    p.add_argument(
        "--telemetry", default=None, metavar="DB",
        help="store the metric snapshot and spans in this results "
        "warehouse under one run (charted by `repro report --trend`)",
    )
    p.add_argument(
        "--label", default=None,
        help="with --telemetry: the provenance run label",
    )
    p.add_argument(
        "cmd", nargs=argparse.REMAINDER, metavar="CMD...",
        help="the repro command line to run, e.g. `elect ring:8` "
        "(prefix with -- if it starts with a dash)",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "obs", help="observability utilities (stored telemetry export)"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    px = obs_sub.add_parser(
        "export",
        help="export warehouse span telemetry as Chrome trace-event JSON",
    )
    px.add_argument(
        "db", help="warehouse holding telemetry rows "
        "(`repro profile --telemetry DB CMD...`)",
    )
    px.add_argument(
        "--trace-json", required=True, metavar="FILE",
        help="output file (loadable in Perfetto / chrome://tracing)",
    )
    px.add_argument(
        "--run", type=int, default=None,
        help="restrict to this run id (default: spans from every run)",
    )
    px.set_defaults(func=_cmd_obs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream consumer (e.g. `corpus emit ... | head`) closed early;
        # point stdout at devnull so interpreter shutdown doesn't re-raise
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
