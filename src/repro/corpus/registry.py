"""The corpus-family registry: named, seeded, parameterized graph streams.

A *corpus family* is a lazy generator of ``(name, graph)`` entries — the
unit every sweep consumes.  Families never materialize their corpus:
``CorpusFamily.generate`` returns an iterator that builds one graph at a
time, so a million-entry corpus costs one entry of memory and composes
with the engine's streaming path (:func:`repro.engine.run_stream`).

Determinism and the prefix contract
    Every family draws all randomness from one ``random.Random(seed)``
    stream, consumed in entry order.  Entry ``i`` therefore depends only
    on ``(seed, i)`` — never on ``count`` — so the first ``k`` entries of
    ``generate(count=n)`` are *identical* for every ``n >= k``.  This is
    what makes interrupted sweeps resumable: the resumed run re-creates
    the same iterator and skips already-recorded names, and the merged
    result file is byte-identical to an uninterrupted run (see
    :mod:`repro.engine.store`).

Naming
    Entry names are ``<family>-s<seed>-<index>[-<shape>]`` — unique within
    a stream and stable across runs, so ``(name, task)`` keys a result
    record globally (the store's resume key).

Feasibility coverage
    The Yamashita-Kameda criterion (Proposition 2.1) splits port-numbered
    graphs into feasible and infeasible; the registry deliberately covers
    both sides: random trees, caterpillars and random regular graphs are
    (usually) feasible, while tori, hypercubes, circulants, quotient-lifts
    and the vertex-transitive mix are infeasible by construction — the
    workloads that exercise the quotient and stabilization machinery.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple

from repro.errors import CorpusError
from repro.graphs.port_graph import PortGraph
from repro.util.rng import make_rng

CorpusIter = Iterator[Tuple[str, PortGraph]]
FamilyFn = Callable[..., CorpusIter]

FAMILIES: Dict[str, "CorpusFamily"] = {}


@dataclass(frozen=True)
class CorpusFamily:
    """One registered family: metadata plus the lazy generator function.

    ``fn(prefix, rng, count, **params)`` must yield ``(name, graph)``
    pairs, drawing randomness only from ``rng`` in entry order (the
    prefix contract above).
    """

    name: str
    description: str
    feasibility: str  # "feasible", "infeasible", or "mixed"
    fn: FamilyFn = field(repr=False)

    @property
    def params(self) -> Dict[str, int]:
        """The family-specific knobs and their defaults (beyond
        ``count`` and ``seed``)."""
        sig = inspect.signature(self.fn)
        return {
            p.name: p.default
            for p in sig.parameters.values()
            if p.name not in ("prefix", "rng", "count")
        }

    def generate(self, count: int, seed: int = 0, **params) -> CorpusIter:
        """Lazily yield ``count`` named graphs for ``seed``; unknown
        ``params`` raise :class:`CorpusError` before the first entry."""
        if count < 0:
            raise CorpusError(f"count must be >= 0, got {count}")
        known = self.params
        for key in params:
            if key not in known:
                raise CorpusError(
                    f"family '{self.name}' has no parameter '{key}'; "
                    f"accepted: {', '.join(sorted(known)) or '(none)'}"
                )
        prefix = f"{self.name}-s{seed}"
        return self.fn(prefix, make_rng(seed), count, **params)


def register_family(
    name: str, description: str, feasibility: str
) -> Callable[[FamilyFn], FamilyFn]:
    """Decorator: register a family generator function under ``name``."""

    def deco(fn: FamilyFn) -> FamilyFn:
        if name in FAMILIES:
            raise ValueError(f"corpus family '{name}' is already registered")
        FAMILIES[name] = CorpusFamily(
            name=name, description=description, feasibility=feasibility, fn=fn
        )
        return fn

    return deco


def get_family(name: str) -> CorpusFamily:
    """Resolve a family name; raise with the list of known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise CorpusError(
            f"unknown corpus family '{name}'; known: "
            f"{', '.join(sorted(FAMILIES))}"
        ) from None


def list_families() -> List[CorpusFamily]:
    """All registered families, sorted by name."""
    return [FAMILIES[name] for name in sorted(FAMILIES)]


def parse_family_spec(spec: str) -> Tuple[CorpusFamily, int, int, Dict[str, int]]:
    """Parse ``family[:count[,seed=S,key=val,...]]`` into
    ``(family, count, seed, params)``.

    Examples: ``circulants``, ``random-trees:500``,
    ``lifts:200,seed=7,max_ring=12``.  The default count is 100.
    """
    head, _, argtext = spec.partition(":")
    family = get_family(head)
    count, seed = 100, 0
    params: Dict[str, int] = {}
    if argtext:
        for idx, token in enumerate(argtext.split(",")):
            token = token.strip()
            if not token:
                continue
            try:
                if "=" in token:
                    key, _, value = token.partition("=")
                    key = key.strip()
                    if key == "seed":
                        seed = int(value)
                    elif key == "count":
                        count = int(value)
                    else:
                        params[key] = int(value)
                elif idx == 0:
                    count = int(token)
                else:
                    raise CorpusError(
                        f"corpus spec '{spec}': only the first argument may "
                        f"be positional (count); use key=val for the rest"
                    )
            except ValueError:
                raise CorpusError(
                    f"corpus spec '{spec}': argument '{token}' is not an "
                    f"integer"
                ) from None
    return family, count, seed, params


def iter_corpus(spec: str) -> CorpusIter:
    """Open a family spec (see :func:`parse_family_spec`) as a lazy
    ``(name, graph)`` stream."""
    family, count, seed, params = parse_family_spec(spec)
    return family.generate(count, seed=seed, **params)


def is_family_spec(spec: str) -> bool:
    """Whether ``spec`` names a registered family (the CLI uses this to
    distinguish family specs from single-graph specs)."""
    head, _, _ = spec.partition(":")
    return head in FAMILIES
