"""Named, seeded, parameterized corpus families.

The registry (:mod:`repro.corpus.registry`) maps family names to lazy
``(name, graph)`` generators; the built-in families
(:mod:`repro.corpus.families`) cover both sides of the Yamashita-Kameda
feasibility criterion, from random trees to deliberately infeasible
vertex-transitive topologies.  Consumers: the streaming engine entry
point (:func:`repro.engine.run_stream`), ``repro corpus list|emit`` and
``repro sweep --corpus <family>``.
"""

from repro.corpus.registry import (
    FAMILIES,
    CorpusFamily,
    CorpusIter,
    get_family,
    is_family_spec,
    iter_corpus,
    list_families,
    parse_family_spec,
    register_family,
)
import repro.corpus.families  # noqa: F401  (registers the built-ins)

__all__ = [
    "FAMILIES",
    "CorpusFamily",
    "CorpusIter",
    "get_family",
    "is_family_spec",
    "iter_corpus",
    "list_families",
    "parse_family_spec",
    "register_family",
]
