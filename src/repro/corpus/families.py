"""The built-in corpus families.

Each generator follows the registry's prefix contract: all randomness
comes from the single ``rng`` stream, consumed in entry order, so the
first ``k`` entries never depend on ``count``.  Generators that must
retry (connected circulants, regular pairings, connected lifts) draw
their retries from the same stream — still deterministic, since the
draws happen in a fixed sequential order.

Sizes default to the small-to-medium range the engine's tasks handle in
milliseconds, so six-digit corpora stay tractable; every knob is
overridable through the spec syntax (``circulants:1000,max_n=64``).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.registry import CorpusIter, register_family
from repro.errors import CorpusError, GraphStructureError
from repro.graphs.generators import (
    caterpillar,
    circulant,
    clique,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    lift,
    random_regular,
    random_tree,
    ring,
)
from repro.graphs.port_graph import PortGraph


@register_family(
    "tori",
    "rows x cols grid tori with the canonical east/west/south/north ports",
    "infeasible",
)
def _tori(prefix: str, rng: random.Random, count: int,
          min_side: int = 3, max_side: int = 9) -> CorpusIter:
    for i in range(count):
        rows = rng.randint(min_side, max_side)
        cols = rng.randint(min_side, max_side)
        yield f"{prefix}-{i:05d}-{rows}x{cols}", grid_torus(rows, cols)


@register_family(
    "hypercubes",
    "d-dimensional hypercubes (port i flips bit i)",
    "infeasible",
)
def _hypercubes(prefix: str, rng: random.Random, count: int,
                min_dim: int = 1, max_dim: int = 7) -> CorpusIter:
    for i in range(count):
        dim = rng.randint(min_dim, max_dim)
        yield f"{prefix}-{i:05d}-d{dim}", hypercube(dim)


def _random_circulant(
    rng: random.Random, min_n: int, max_n: int, max_offsets: int
) -> Tuple[str, PortGraph]:
    """One connected circulant; retries (from the same stream) until the
    sampled offsets generate Z_n."""
    while True:
        n = rng.randint(min_n, max_n)
        available = range(1, (n - 1) // 2 + 1)  # 1 <= o < n/2
        if not available:
            continue
        k = rng.randint(1, min(max_offsets, len(available)))
        offsets = sorted(rng.sample(available, k))
        try:
            g = circulant(n, offsets)
        except GraphStructureError:
            continue  # gcd(offsets, n) > 1: disconnected
        shape = f"n{n}o" + "+".join(str(o) for o in offsets)
        return shape, g


@register_family(
    "circulants",
    "connected circulant graphs C_n(offsets), rotation-invariant ports",
    "infeasible",
)
def _circulants(prefix: str, rng: random.Random, count: int,
                min_n: int = 6, max_n: int = 30,
                max_offsets: int = 3) -> CorpusIter:
    for i in range(count):
        shape, g = _random_circulant(rng, min_n, max_n, max_offsets)
        yield f"{prefix}-{i:05d}-{shape}", g


@register_family(
    "random-trees",
    "uniform-attachment random trees (stars and mirrored paths can slip "
    "in, so feasibility is typical, not guaranteed)",
    "mixed",
)
def _random_trees(prefix: str, rng: random.Random, count: int,
                  min_n: int = 6, max_n: int = 40) -> CorpusIter:
    for i in range(count):
        n = rng.randint(min_n, max_n)
        yield f"{prefix}-{i:05d}-n{n}", random_tree(n, seed=rng)


@register_family(
    "caterpillars",
    "caterpillar trees with random leg profiles along the spine",
    "mixed",
)
def _caterpillars(prefix: str, rng: random.Random, count: int,
                  min_spine: int = 3, max_spine: int = 12,
                  max_legs: int = 3) -> CorpusIter:
    for i in range(count):
        spine = rng.randint(min_spine, max_spine)
        legs = [rng.randint(0, max_legs) for _ in range(spine)]
        shape = f"sp{spine}l" + "".join(str(k) for k in legs)
        yield f"{prefix}-{i:05d}-{shape}", caterpillar(spine, legs)


@register_family(
    "random-regular",
    "random d-regular graphs via the pairing model (random ports break "
    "most symmetries, but not provably all)",
    "mixed",
)
def _random_regular(prefix: str, rng: random.Random, count: int,
                    min_n: int = 8, max_n: int = 24,
                    min_degree: int = 3, max_degree: int = 4) -> CorpusIter:
    if (min_n == max_n and min_degree == max_degree
            and (min_n * min_degree) % 2):
        # ranges are contiguous, so only fully-pinned odd*odd is unsatisfiable
        raise CorpusError(
            f"no d-regular graph exists with n = {min_n}, d = {min_degree}: "
            f"n * d must be even"
        )
    for i in range(count):
        while True:
            d = rng.randint(min_degree, max_degree)
            n = rng.randint(min_n, max_n)
            if (n * d) % 2:
                continue  # the pairing model needs an even stub count; redraw
            try:
                g = random_regular(n, d, seed=rng)
            except GraphStructureError:
                continue  # rare: no simple connected pairing found; redraw
            break
        yield f"{prefix}-{i:05d}-n{n}d{d}", g


@register_family(
    "lifts",
    "quotient-lifts: k-fold covers of feasible pendant rings — infeasible "
    "by construction, with stabilization depth = phi of the base",
    "infeasible",
)
def _lifts(prefix: str, rng: random.Random, count: int,
           min_ring: int = 4, max_ring: int = 10,
           max_multiplicity: int = 3) -> CorpusIter:
    for i in range(count):
        ring_size = rng.randint(min_ring, max_ring)
        multiplicity = rng.randint(2, max_multiplicity)
        base = cycle_with_leader_gadget(ring_size)
        g = lift(base, multiplicity, seed=rng)
        yield f"{prefix}-{i:05d}-r{ring_size}x{multiplicity}", g


@register_family(
    "vertex-transitive",
    "deliberately infeasible vertex-transitive mix: rings, canonical "
    "cliques, hypercubes, tori and circulants",
    "infeasible",
)
def _vertex_transitive(prefix: str, rng: random.Random, count: int,
                       max_n: int = 32) -> CorpusIter:
    def _ring() -> Tuple[str, PortGraph]:
        n = rng.randint(3, max_n)
        return f"ring{n}", ring(n)

    def _clique() -> Tuple[str, PortGraph]:
        n = rng.randint(3, min(10, max_n))
        return f"clique{n}", clique(n)  # canonical circulant ports

    def _cube() -> Tuple[str, PortGraph]:
        dim = rng.randint(1, max(1, min(5, max_n.bit_length() - 1)))
        return f"cube{dim}", hypercube(dim)

    def _torus() -> Tuple[str, PortGraph]:
        rows, cols = rng.randint(3, 6), rng.randint(3, 6)
        return f"torus{rows}x{cols}", grid_torus(rows, cols)

    def _circ() -> Tuple[str, PortGraph]:
        shape, g = _random_circulant(rng, 6, max_n, 2)
        return f"circ{shape}", g

    kinds = (_ring, _clique, _cube, _torus, _circ)
    for i in range(count):
        shape, g = rng.choice(kinds)()
        yield f"{prefix}-{i:05d}-{shape}", g
