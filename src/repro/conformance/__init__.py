"""Cross-model conformance: the differential-testing subsystem.

The paper's guarantees — a correct election verifiable purely from node
outputs, time bounds in terms of D and phi, advice-size tradeoffs — are
claimed independently of the execution model.  This package turns that
claim into a streaming oracle: every registered election algorithm
(:mod:`repro.conformance.algorithms`) runs under all three simulation
models (synchronous reference, byte-honest strict wire mode, and the
asynchronous engine under a roster of adversarial schedules from
:mod:`repro.sim.schedulers`), and the runs are cross-checked
(:mod:`repro.conformance.oracle`):

* outputs and per-node round accounting must be *bit-identical* across
  models (the synchronizer and wire-codec contracts);
* ``verify_election`` outcomes must agree on the leader up to port-graph
  automorphism (:func:`repro.core.verify.leaders_equivalent`);
* election times must respect each algorithm's envelope and the global
  ``D + phi + slack`` bound the engine's ``messages`` task derives;
* advice sizes must be monotone as the paper's tradeoff predicts (the
  naive rank labeling dominates both the trie and the full map);
* the refinement fast path and the view machinery must agree on
  feasibility and the election index, and feasible graphs must be rigid.

Everything streams through the experiment engine as the multi-record
``conformance`` task, so corpus-scale differential sweeps gain
``repro conformance --out FILE --resume`` for free.
"""

from repro.conformance.algorithms import (
    ALGORITHMS,
    AlgorithmSpec,
    Prepared,
    Profile,
    get_algorithm,
    list_algorithms,
    profile_graph,
    register_algorithm,
)
from repro.conformance.oracle import (
    ORBIT_RULE,
    ConformanceConfig,
    conformance_entry,
    conformance_task_name,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "Prepared",
    "Profile",
    "get_algorithm",
    "list_algorithms",
    "profile_graph",
    "register_algorithm",
    "ORBIT_RULE",
    "ConformanceConfig",
    "conformance_entry",
    "conformance_task_name",
]
