"""The uniform runner protocol over every election algorithm.

Historically each algorithm shipped its own ``run_*`` wrapper with its
own advice construction, round budget and assertions; nothing could
enumerate "all algorithms" and drive them through an arbitrary engine.
This module is that missing seam: an :class:`AlgorithmSpec` registry
describing, for each algorithm, when it applies, how to prepare a run
(factory + advice + round budget), what election time it promises, and
which *leader rule* it follows — so the conformance oracle can run any
algorithm under any simulation model and know what must agree.

Leader rules
    ``min-view``
        Elects the node whose depth-phi view is canonically smallest
        (map-based, known-d-phi, tree-no-advice).  All min-view
        algorithms on the same graph must elect the *same node exactly*.
    ``trie-label``
        Elects the node RetrieveLabel assigns label 1 (core Elect); the
        trie order is not the canonical view order, so this leader may
        legitimately differ from the min-view one.
    ``code-rank``
        Elects the node with the smallest nested view code (naive-rank);
        again a different total order.
    ``pinned``
        The oracle hand-picks the leader (labeling-scheme).

Across *models* the leader of one algorithm is always the same node (the
algorithms are deterministic); across *algorithms* only same-rule leaders
are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.errors import ConformanceError
from repro.graphs.port_graph import PortGraph
from repro.sim.local_model import NodeAlgorithm
from repro.views.refinement import stable_partition


@dataclass(frozen=True)
class Profile:
    """Cheap per-graph facts every applicability gate and advice builder
    needs; computed once per corpus entry (refinement fast path, no view
    allocation)."""

    n: int
    m: int
    diameter: int
    feasible: bool
    phi: Optional[int]  # None iff infeasible
    stabilization_depth: int
    num_classes: int
    is_tree: bool


def profile_graph(g: PortGraph) -> Profile:
    """Profile a graph through the refinement fast path."""
    stable = stable_partition(g)
    return Profile(
        n=g.n,
        m=g.num_edges,
        diameter=g.diameter(),
        feasible=stable.discrete,
        phi=stable.depth if stable.discrete else None,
        stabilization_depth=stable.depth,
        num_classes=stable.num_classes,
        is_tree=g.num_edges == g.n - 1,
    )


#: Election-time promise: ("==", t) for exact, ("<=", t) for an upper bound.
TimeBound = Tuple[str, int]


@dataclass(frozen=True)
class Prepared:
    """Everything one algorithm needs to run on one graph, under any
    engine: the per-node factory, the oracle's advice (identical string
    or per-node map), the round budget, and the promised election time.

    ``advice_bits`` is the size entering the cross-algorithm monotonicity
    check; ``None`` opts out (per-node advice is a different currency).
    """

    factory: Callable[[], NodeAlgorithm]
    max_rounds: int
    time_bound: TimeBound
    advice: Optional[Bits] = None
    advice_map: Optional[Dict[int, Bits]] = None
    advice_bits: Optional[int] = None


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered election algorithm.

    ``applicable(g, profile)`` returns ``None`` to run or a human-readable
    skip reason; ``prepare(g, profile)`` is only called when applicable.
    """

    name: str
    leader_rule: str  # "min-view" | "trie-label" | "code-rank" | "pinned"
    applicable: Callable[[PortGraph, Profile], Optional[str]]
    prepare: Callable[[PortGraph, Profile], Prepared]


ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register a spec under its name (unique)."""
    if spec.name in ALGORITHMS:
        raise ConformanceError(
            f"election algorithm '{spec.name}' is already registered"
        )
    ALGORITHMS[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Resolve a spec by name; raise with the list of known names."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ConformanceError(
            f"unknown election algorithm '{name}'; known: "
            f"{', '.join(sorted(ALGORITHMS))}"
        ) from None


def list_algorithms() -> List[AlgorithmSpec]:
    """All registered algorithms, sorted by name."""
    return [ALGORITHMS[name] for name in sorted(ALGORITHMS)]


# ----------------------------------------------------------------------
# applicability gates
# ----------------------------------------------------------------------
def _needs_feasible(g: PortGraph, profile: Profile) -> Optional[str]:
    if not profile.feasible:
        return "graph is infeasible (identical views); no advice can help"
    return None


#: The nested view code of the naive baseline grows exponentially with
#: phi (by design — it is the strawman); keep it honest and fast.
NAIVE_RANK_MAX_PHI = 2
NAIVE_RANK_MAX_N = 20


def _naive_gate(g: PortGraph, profile: Profile) -> Optional[str]:
    reason = _needs_feasible(g, profile)
    if reason:
        return reason
    if profile.phi > NAIVE_RANK_MAX_PHI or profile.n > NAIVE_RANK_MAX_N:
        return (
            f"nested view codes are exponential in phi; gated to "
            f"phi <= {NAIVE_RANK_MAX_PHI}, n <= {NAIVE_RANK_MAX_N} "
            f"(got phi = {profile.phi}, n = {profile.n})"
        )
    return None


def _tree_gate(g: PortGraph, profile: Profile) -> Optional[str]:
    if not profile.is_tree:
        return "requires a tree (m = n - 1)"
    return _needs_feasible(g, profile)


def _always(g: PortGraph, profile: Profile) -> Optional[str]:
    return None


# ----------------------------------------------------------------------
# the built-in algorithms
# ----------------------------------------------------------------------
def _prepare_elect(g: PortGraph, profile: Profile) -> Prepared:
    from repro.core.advice import compute_advice
    from repro.core.elect import ElectAlgorithm

    bundle = compute_advice(g)
    return Prepared(
        factory=ElectAlgorithm,
        advice=bundle.bits,
        advice_bits=bundle.size_bits,
        max_rounds=bundle.phi + 2,
        time_bound=("==", bundle.phi),
    )


def _prepare_known_d_phi(g: PortGraph, profile: Profile) -> Prepared:
    from repro.core.known_d_phi import KnownDPhiAlgorithm, known_d_phi_advice

    advice = known_d_phi_advice(profile.diameter, profile.phi)
    budget = profile.diameter + profile.phi
    return Prepared(
        factory=KnownDPhiAlgorithm,
        advice=advice,
        advice_bits=None,  # O(log D + log phi): not in the size tradeoff
        max_rounds=budget + 1,
        time_bound=("==", budget),
    )


def _prepare_map_based(g: PortGraph, profile: Profile) -> Prepared:
    from repro.baselines.map_based import MapBasedAlgorithm, map_advice

    advice = map_advice(g, profile.phi)
    return Prepared(
        factory=MapBasedAlgorithm,
        advice=advice,
        advice_bits=len(advice),
        max_rounds=profile.phi + 1,
        time_bound=("==", profile.phi),
    )


def _prepare_naive_rank(g: PortGraph, profile: Profile) -> Prepared:
    from repro.baselines.naive_rank import NaiveRankAlgorithm, naive_rank_advice

    advice = naive_rank_advice(g, profile.phi)
    return Prepared(
        factory=NaiveRankAlgorithm,
        advice=advice,
        advice_bits=len(advice),
        max_rounds=profile.phi + 1,
        time_bound=("==", profile.phi),
    )


def _prepare_tree_no_advice(g: PortGraph, profile: Profile) -> Prepared:
    from repro.baselines.tree_no_advice import TreeNoAdviceAlgorithm

    return Prepared(
        factory=TreeNoAdviceAlgorithm,
        max_rounds=profile.diameter + 1,
        time_bound=("<=", profile.diameter),
    )


def _prepare_labeling_scheme(g: PortGraph, profile: Profile) -> Prepared:
    from repro.baselines.labeling_scheme import (
        LabelingSchemeAlgorithm,
        labeling_advice_map,
    )

    return Prepared(
        factory=LabelingSchemeAlgorithm,
        advice_map=labeling_advice_map(g, leader=0),
        max_rounds=1,
        time_bound=("==", 0),
    )


register_algorithm(
    AlgorithmSpec(
        name="elect",
        leader_rule="trie-label",
        applicable=_needs_feasible,
        prepare=_prepare_elect,
    )
)
register_algorithm(
    AlgorithmSpec(
        name="known-d-phi",
        leader_rule="min-view",
        applicable=_needs_feasible,
        prepare=_prepare_known_d_phi,
    )
)
register_algorithm(
    AlgorithmSpec(
        name="map-based",
        leader_rule="min-view",
        applicable=_needs_feasible,
        prepare=_prepare_map_based,
    )
)
register_algorithm(
    AlgorithmSpec(
        name="naive-rank",
        leader_rule="code-rank",
        applicable=_naive_gate,
        prepare=_prepare_naive_rank,
    )
)
register_algorithm(
    AlgorithmSpec(
        name="tree-no-advice",
        leader_rule="min-view",
        applicable=_tree_gate,
        prepare=_prepare_tree_no_advice,
    )
)
register_algorithm(
    AlgorithmSpec(
        name="labeling-scheme",
        leader_rule="pinned",
        applicable=_always,
        prepare=_prepare_labeling_scheme,
    )
)
