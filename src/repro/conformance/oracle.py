"""The differential oracle: one corpus entry, every algorithm, every model.

:func:`conformance_entry` maps one ``(name, graph)`` corpus entry to a
*group* of engine records — one sub-record per applicable algorithm, then
a summary record carrying the cross-algorithm checks.  Disagreements are
**recorded, never raised**: the sweep always completes, and "zero
disagreement records" is an assertable property of the output file.

Per algorithm, the synchronous run is the reference; the oracle then
demands, for the strict (wire-encoded) run and for each adversarial
asynchronous schedule:

* ``outputs`` bit-identical to the reference (and for strict mode, the
  per-node ``output_round`` map and the total message count too — the
  wire codec must be invisible down to the round accounting);
* per-node ``output_round`` identical for async runs as well (a node's
  output round is a function of its local round sequence, which the
  synchronizer must reproduce);
* the verified leader equivalent to the reference leader up to
  port-graph automorphism (degenerates to equality on feasible graphs,
  but states the model-independence claim at its proper strength);
* the election time inside the algorithm's promised bound and inside the
  global ``D + phi + slack`` envelope.

Across algorithms, all ``min-view`` leaders must coincide exactly, and
advice sizes must respect the paper's tradeoff (the naive rank labeling
dominates both the trie and the full map).  Independently of any
algorithm, the refinement fast path and the view machinery must agree on
feasibility and the election index, and feasible graphs must be rigid
(no nontrivial port automorphism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.conformance.algorithms import (
    Prepared,
    Profile,
    list_algorithms,
    profile_graph,
)
from repro.core.verify import leaders_equivalent, verify_election
from repro.engine.records import Record
from repro.engine.tasks import MESSAGES_ROUND_SLACK
from repro.errors import ConformanceError, ReproError
from repro.graphs.port_graph import PortGraph
from repro.sim.async_model import AsyncEngine
from repro.sim.local_model import RunResult, SyncEngine
from repro.sim.schedulers import Schedule, make_schedules
from repro.sim.strict import wire_wrapped

#: Default schedule fan-out per corpus entry.
DEFAULT_SCHEDULES = 3

#: The advice-size tradeoff is asymptotic; at n = 3 the constant terms
#: cross (the 3-node path codes to 650 naive-rank bits vs 654 trie bits).
#: Exhaustive sweeps over n >= 4 show the naive baseline strictly
#: dominating with a margin that grows with n, so the monotonicity check
#: applies from there.
ADVICE_MONOTONE_MIN_N = 4


@dataclass(frozen=True)
class ConformanceConfig:
    """Knobs of one conformance sweep.

    ``schedules``/``seed`` pick the adversarial roster
    (:func:`repro.sim.schedulers.make_schedules` — deterministic, so
    records are reproducible).  ``algorithms`` restricts the registry to
    a subset (``None`` = all; the ``orbit-collapse`` rule counts as a
    member, so a subset that omits it skips the rule).  ``strict_async``
    additionally composes the wire codec with the *first* schedule.
    ``rigidity_limit`` caps the graph size for the VF2 rigidity
    cross-check (0 disables it).  ``orbit_check`` toggles the
    collapsed-vs-full rule (:func:`_check_orbit_collapse`).
    """

    schedules: int = DEFAULT_SCHEDULES
    seed: int = 0
    algorithms: Optional[Tuple[str, ...]] = None
    strict_async: bool = True
    rigidity_limit: int = 48
    orbit_check: bool = True

    def schedule_roster(self) -> List[Schedule]:
        return make_schedules(self.schedules, self.seed)


def conformance_task_name(schedules: int = DEFAULT_SCHEDULES, seed: int = 0) -> str:
    """The canonical engine-task name for a conformance configuration —
    the string that keys records and resume state (parameter order is
    fixed so equal configs always produce equal task names)."""
    if schedules == DEFAULT_SCHEDULES and seed == 0:
        return "conformance"
    return f"conformance:schedules={schedules},seed={seed}"


def _disagreement(
    kind: str, algorithm: Optional[str], model: Optional[str], detail: str
) -> Dict[str, Any]:
    """One recorded disagreement cell (kept JSON-scalar)."""
    out: Dict[str, Any] = {"kind": kind, "detail": detail}
    if algorithm is not None:
        out["algorithm"] = algorithm
    if model is not None:
        out["model"] = model
    return out


def _time_ok(bound: Tuple[str, int], t: int) -> bool:
    op, limit = bound
    if op == "==":
        return t == limit
    if op == "<=":
        return t <= limit
    raise ConformanceError(f"unknown time bound operator {op!r}")


def _model_runs(
    g: PortGraph,
    prepared: Prepared,
    profile: Profile,
    config: ConformanceConfig,
) -> List[Tuple[str, Callable[[], RunResult]]]:
    """One ``(model name, run thunk)`` per model; reference first.

    Thunks are executed (and their failures recorded) by the caller.
    Asynchronous runs get a larger round budget: under an adversarial
    schedule a node may run ahead of the slowest node by up to their
    distance (it keeps relaying after outputting), so the safe bound is
    the synchronous budget plus the diameter, not plus a constant.
    """
    common = dict(advice=prepared.advice, advice_map=prepared.advice_map)
    async_rounds = prepared.max_rounds + profile.diameter
    strict_factory = wire_wrapped(prepared.factory)

    def sync_run(factory):
        return SyncEngine(
            g, factory, max_rounds=prepared.max_rounds, **common
        ).run()

    def async_run(factory, schedule):
        return AsyncEngine(
            g,
            factory,
            scheduler=schedule.make(),
            max_rounds=async_rounds,
            **common,
        ).run()

    runs: List[Tuple[str, Callable[[], RunResult]]] = [
        ("local", lambda: sync_run(prepared.factory)),
        ("strict", lambda: sync_run(strict_factory)),
    ]
    roster = config.schedule_roster()
    for schedule in roster:
        runs.append(
            (
                f"async[{schedule.name}]",
                lambda schedule=schedule: async_run(prepared.factory, schedule),
            )
        )
    if config.strict_async and roster:
        schedule = roster[0]
        runs.append(
            (
                f"strict-async[{schedule.name}]",
                lambda: async_run(strict_factory, schedule),
            )
        )
    return runs


def _check_algorithm(
    entry: str,
    g: PortGraph,
    profile: Profile,
    spec,
    config: ConformanceConfig,
    task_name: str,
) -> Tuple[Record, Optional[int], Optional[int], str]:
    """Run one algorithm under all models and cross-check; returns the
    sub-record plus ``(leader, advice_bits, leader_rule)`` for the
    summary's cross-algorithm checks."""
    def sub_record(**overrides: Any) -> Record:
        """The algorithm sub-record skeleton; every branch fills the same
        keys so records stay schema-consistent for the summarizer and the
        golden byte pins."""
        record: Record = {
            "task": task_name,
            "name": f"{entry}/{spec.name}",
            "entry": entry,
            "n": profile.n,
            "algorithm": spec.name,
            "leader_rule": spec.leader_rule,
            "advice_bits": None,
            "leader": None,
            "election_time": None,
            "total_messages": None,
            "models": [],
            "cells": 0,
            "disagreements": [],
        }
        record.update(overrides)
        return record

    disagreements: List[Dict[str, Any]] = []
    try:
        prepared = spec.prepare(g, profile)
    except ReproError as exc:
        # the oracle's contract: failures are recorded, never raised
        return (
            sub_record(
                disagreements=[
                    _disagreement(
                        "prepare-failed", spec.name, None,
                        f"{type(exc).__name__}: {exc}",
                    )
                ]
            ),
            None,
            None,
            spec.leader_rule,
        )

    model_names: List[str] = []
    runs: List[Tuple[str, RunResult]] = []
    for model, thunk in _model_runs(g, prepared, profile, config):
        model_names.append(model)
        try:
            runs.append((model, thunk()))
        except ReproError as exc:
            # e.g. a round-budget overrun — exactly the class of
            # divergence the oracle exists to catch
            disagreements.append(
                _disagreement(
                    "run-failed", spec.name, model,
                    f"{type(exc).__name__}: {exc}",
                )
            )

    base: Optional[RunResult] = None
    if runs and runs[0][0] == "local":
        base = runs[0][1]

    base_leader: Optional[int] = None
    if base is None:
        record = sub_record(
            advice_bits=prepared.advice_bits,
            models=model_names,
            cells=len(model_names),
            disagreements=disagreements,
        )
        return record, None, prepared.advice_bits, spec.leader_rule

    try:
        base_outcome = verify_election(g, base.outputs)
        base_leader = base_outcome.leader
    except ReproError as exc:
        disagreements.append(
            _disagreement(
                "invalid-election", spec.name, "local", f"{exc}"
            )
        )

    if not _time_ok(prepared.time_bound, base.election_time):
        op, limit = prepared.time_bound
        disagreements.append(
            _disagreement(
                "time-bound",
                spec.name,
                "local",
                f"election time {base.election_time} violates promised "
                f"{op} {limit}",
            )
        )
    if profile.feasible:
        envelope = profile.diameter + profile.phi + MESSAGES_ROUND_SLACK
        if base.election_time > envelope:
            disagreements.append(
                _disagreement(
                    "round-envelope",
                    spec.name,
                    "local",
                    f"election time {base.election_time} exceeds the "
                    f"D + phi + slack envelope {envelope}",
                )
            )

    for model, result in runs[1:]:
        if result.outputs != base.outputs:
            diff = [
                v
                for v in g.nodes()
                if result.outputs.get(v) != base.outputs.get(v)
            ]
            disagreements.append(
                _disagreement(
                    "outputs",
                    spec.name,
                    model,
                    f"outputs differ from the local model at nodes "
                    f"{diff[:5]}",
                )
            )
        if result.output_round != base.output_round:
            diff = [
                v
                for v in g.nodes()
                if result.output_round.get(v) != base.output_round.get(v)
            ]
            disagreements.append(
                _disagreement(
                    "round-parity",
                    spec.name,
                    model,
                    f"per-node output rounds differ from the local model at "
                    f"nodes {diff[:5]}",
                )
            )
        if model == "strict" and result.total_messages != base.total_messages:
            disagreements.append(
                _disagreement(
                    "message-count",
                    spec.name,
                    model,
                    f"strict mode sent {result.total_messages} messages, "
                    f"local model sent {base.total_messages}",
                )
            )
        if base_leader is not None:
            if result.outputs == base.outputs:
                # bit-identical outputs: the outcome is a pure function
                # of the outputs, so leader equivalence is trivially met
                # and re-verifying would only repeat the reference work
                continue
            try:
                outcome = verify_election(g, result.outputs)
            except ReproError as exc:
                disagreements.append(
                    _disagreement("invalid-election", spec.name, model, f"{exc}")
                )
                continue
            if not leaders_equivalent(g, base_leader, outcome.leader):
                disagreements.append(
                    _disagreement(
                        "leader",
                        spec.name,
                        model,
                        f"leader {outcome.leader} is not automorphism-"
                        f"equivalent to the local model's {base_leader}",
                    )
                )

    record = sub_record(
        advice_bits=prepared.advice_bits,
        leader=base_leader,
        election_time=base.election_time,
        total_messages=base.total_messages,
        models=model_names,
        cells=len(model_names),
        disagreements=disagreements,
    )
    return record, base_leader, prepared.advice_bits, spec.leader_rule


#: Name of the collapsed-vs-full rule in records and ``algorithms`` filters.
ORBIT_RULE = "orbit-collapse"


def _check_orbit_collapse(
    entry: str,
    g: PortGraph,
    profile: Profile,
    task_name: str,
) -> Record:
    """The collapsed-vs-full rule (:mod:`repro.core.orbit_elect`): the
    exact automorphism orbits must refine the stable view partition (and
    be discrete on feasible graphs), and the orbit-collapsed engine —
    under both the exact-orbit and the behavior-class partition — must
    reproduce the per-node engine's :class:`RunResult` field for field
    on the uniform-advice view probe, whose outputs must in turn equal
    the direct view computation; on feasible graphs the collapsed elect
    pipeline must return the per-node pipeline's record exactly.  One
    cell per comparison, disagreements recorded, never raised."""
    from repro.core.orbit_elect import (
        behavior_classes,
        node_orbits,
        run_elect_orbit,
        run_view_probe,
    )
    from repro.views.refinement import stable_partition
    from repro.views.view import views_of_graph

    disagreements: List[Dict[str, Any]] = []
    models: List[str] = []
    probe_depth = profile.stabilization_depth + 1
    num_orbits = None
    max_orbit_size = None

    def run_cell(model: str, thunk: Callable[[], Any]) -> Optional[Any]:
        models.append(model)
        try:
            return thunk()
        except ReproError as exc:
            disagreements.append(
                _disagreement(
                    "run-failed", ORBIT_RULE, model,
                    f"{type(exc).__name__}: {exc}",
                )
            )
            return None

    stable = stable_partition(g)
    orbits = run_cell("partition", lambda: node_orbits(g, stable))
    classes = behavior_classes(g, stable)
    if orbits is not None:
        num_orbits = orbits.num_orbits
        max_orbit_size = orbits.max_orbit_size
        sig = stable.signature
        mixed = [
            members
            for members in orbits.orbits
            if len({sig[v] for v in members}) != 1
        ]
        if mixed:
            disagreements.append(
                _disagreement(
                    "orbit-partition", ORBIT_RULE, "partition",
                    f"an orbit crosses stable-partition classes (first: "
                    f"{list(mixed[0])[:5]}); same-orbit nodes must share "
                    f"views at every depth",
                )
            )
        if profile.feasible and not orbits.discrete:
            disagreements.append(
                _disagreement(
                    "orbit-partition", ORBIT_RULE, "partition",
                    f"feasible graph has a non-singleton orbit "
                    f"(num_orbits={orbits.num_orbits} < n={profile.n}); "
                    f"contradicts Yamashita-Kameda rigidity",
                )
            )

    base = run_cell(
        "probe[pernode]", lambda: run_view_probe(g, probe_depth, collapsed=False)
    )
    if base is not None:
        collapsed_runs = []
        if orbits is not None:
            collapsed_runs.append(("probe[orbit]", orbits))
        collapsed_runs.append(("probe[class]", classes))
        for model, partition in collapsed_runs:
            result = run_cell(
                model,
                lambda partition=partition: run_view_probe(
                    g, probe_depth, orbits=partition
                ),
            )
            if result is not None and result != base:
                fields = [
                    f
                    for f in (
                        "outputs",
                        "output_round",
                        "rounds",
                        "total_messages",
                        "per_round_messages",
                    )
                    if getattr(result, f) != getattr(base, f)
                ]
                disagreements.append(
                    _disagreement(
                        "orbit-parity", ORBIT_RULE, model,
                        f"collapsed probe run differs from the per-node "
                        f"engine in {fields}",
                    )
                )

        def views_match() -> bool:
            views = views_of_graph(g, probe_depth)
            return base.outputs == {v: views[v] for v in g.nodes()}

        if run_cell("probe[views]", views_match) is False:
            disagreements.append(
                _disagreement(
                    "orbit-parity", ORBIT_RULE, "probe[views]",
                    f"probe outputs differ from the direct depth-"
                    f"{probe_depth} view computation",
                )
            )

    if profile.feasible:

        def elect_parity() -> Optional[str]:
            from repro.core.advice import compute_advice
            from repro.core.elect import run_elect

            bundle = compute_advice(g)
            full = run_elect(g, bundle)
            collapsed = run_elect_orbit(g, bundle, orbits=orbits)
            if full != collapsed:
                fields = [
                    f
                    for f in (
                        "n",
                        "phi",
                        "advice_bits",
                        "election_time",
                        "leader",
                        "total_messages",
                    )
                    if getattr(full, f) != getattr(collapsed, f)
                ]
                return f"collapsed elect record differs in {fields}"
            return None

        detail = run_cell("elect[orbit]", elect_parity)
        if detail is not None:
            disagreements.append(
                _disagreement("orbit-parity", ORBIT_RULE, "elect[orbit]", detail)
            )

    return {
        "task": task_name,
        "name": f"{entry}/{ORBIT_RULE}",
        "entry": entry,
        "n": profile.n,
        "algorithm": ORBIT_RULE,
        "leader_rule": "collapsed",
        "num_orbits": num_orbits,
        "num_classes": classes.num_orbits,
        "max_orbit_size": max_orbit_size,
        "probe_depth": probe_depth,
        "models": models,
        "cells": len(models),
        "disagreements": disagreements,
    }


def conformance_entry(
    name: str, g: PortGraph, config: Optional[ConformanceConfig] = None
) -> List[Record]:
    """Differential-test one corpus entry; return its record group
    (per-algorithm sub-records, summary last — the group terminator the
    result store keys resume on)."""
    if config is None:
        config = ConformanceConfig()
    task_name = conformance_task_name(config.schedules, config.seed)
    profile = profile_graph(g)
    summary_disagreements: List[Dict[str, Any]] = []

    # --- cross-implementation checks, independent of any algorithm -----
    from repro.views.election_index import election_index, is_feasible

    view_feasible = is_feasible(g)
    if view_feasible != profile.feasible:
        summary_disagreements.append(
            _disagreement(
                "index-parity",
                None,
                None,
                f"refinement says feasible={profile.feasible}, view "
                f"machinery says feasible={view_feasible}",
            )
        )
    elif profile.feasible:
        view_phi = election_index(g)
        if view_phi != profile.phi:
            summary_disagreements.append(
                _disagreement(
                    "index-parity",
                    None,
                    None,
                    f"refinement phi={profile.phi} but view machinery "
                    f"phi={view_phi}",
                )
            )

    rigidity_checked = False
    if (
        profile.feasible
        and 0 < config.rigidity_limit
        and profile.n <= config.rigidity_limit
    ):
        from repro.graphs.isomorphism import port_automorphism_exists

        rigidity_checked = True
        if port_automorphism_exists(g):
            summary_disagreements.append(
                _disagreement(
                    "rigidity",
                    None,
                    None,
                    "feasible graph has a nontrivial port automorphism "
                    "(contradicts Yamashita-Kameda)",
                )
            )

    # --- per-algorithm runs -------------------------------------------
    records: List[Record] = []
    ran: List[str] = []
    skipped: Dict[str, str] = {}
    min_view_leaders: Dict[str, int] = {}
    advice_sizes: Dict[str, int] = {}
    total_cells = 0
    for spec in list_algorithms():
        if config.algorithms is not None and spec.name not in config.algorithms:
            continue
        reason = spec.applicable(g, profile)
        if reason is not None:
            skipped[spec.name] = reason
            continue
        record, leader, advice_bits, rule = _check_algorithm(
            name, g, profile, spec, config, task_name
        )
        records.append(record)
        ran.append(spec.name)
        total_cells += record["cells"]
        if rule == "min-view" and leader is not None:
            min_view_leaders[spec.name] = leader
        if advice_bits is not None:
            advice_sizes[spec.name] = advice_bits

    # --- the collapsed-vs-full rule -----------------------------------
    if config.orbit_check and (
        config.algorithms is None or ORBIT_RULE in config.algorithms
    ):
        record = _check_orbit_collapse(name, g, profile, task_name)
        records.append(record)
        ran.append(ORBIT_RULE)
        total_cells += record["cells"]

    # --- cross-algorithm checks ---------------------------------------
    if len(set(min_view_leaders.values())) > 1:
        summary_disagreements.append(
            _disagreement(
                "leader-group",
                None,
                None,
                f"min-view algorithms elected different nodes: "
                f"{min_view_leaders}",
            )
        )
    if "naive-rank" in advice_sizes and profile.n >= ADVICE_MONOTONE_MIN_N:
        naive = advice_sizes["naive-rank"]
        for other, bits in advice_sizes.items():
            if other != "naive-rank" and naive < bits:
                summary_disagreements.append(
                    _disagreement(
                        "advice-monotone",
                        None,
                        None,
                        f"naive-rank advice ({naive} bits) is smaller than "
                        f"{other}'s ({bits} bits); the paper's tradeoff "
                        f"predicts the rank labeling dominates",
                    )
                )

    algo_disagreements = sum(len(r["disagreements"]) for r in records)
    summary: Record = {
        "task": task_name,
        "name": name,
        "entry": name,
        "n": profile.n,
        "m": profile.m,
        "diameter": profile.diameter,
        "feasible": profile.feasible,
        "phi": profile.phi,
        "stabilization_depth": profile.stabilization_depth,
        "num_classes": profile.num_classes,
        "schedules": config.schedules,
        "algorithms": ran,
        "skipped": skipped,
        "rigidity_checked": rigidity_checked,
        "advice_bits": advice_sizes,
        "cells": total_cells,
        "disagreements": summary_disagreements,
        "total_disagreements": algo_disagreements + len(summary_disagreements),
    }
    records.append(summary)
    return records
