"""Byte-honest execution: every message crosses the wire as a bitstring.

:class:`WireWrapped` adapts any node algorithm whose messages are COM
tuples ``(port, View)`` (all the election algorithms in this library):
outgoing messages are serialized with the view wire format, incoming
bitstrings are decoded back into interned views before delivery.  Because
decoding re-interns, the wrapped algorithm sees *the same objects* it
would have seen in the fast path — the tests demand bit-identical outputs
— while the engine genuinely only ever transports ``Bits``.

This is the strongest form of the information-boundary guarantee: no
shared-memory channel exists at all.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import SimulationError
from repro.sim.local_model import NodeAlgorithm, NodeContext
from repro.views.view import View
from repro.views.wire import decode_view_wire, encode_view_wire


def _encode_message(msg: Any) -> Bits:
    if (
        isinstance(msg, tuple)
        and len(msg) == 2
        and isinstance(msg[0], int)
        and isinstance(msg[1], View)
    ):
        return concat_bits(
            [encode_uint(0), encode_uint(msg[0]), encode_view_wire(msg[1])]
        )
    raise SimulationError(
        f"strict mode supports COM messages (port, View); got {type(msg).__name__}"
    )


def _decode_message(bits: Bits) -> Any:
    fields = decode_concat(bits)
    kind = decode_uint(fields[0])
    if kind == 0:
        if len(fields) != 3:
            raise SimulationError("malformed strict COM message")
        return (decode_uint(fields[1]), decode_view_wire(fields[2]))
    raise SimulationError(f"unknown strict message kind {kind}")


class WireWrapped:
    """Wrap a node algorithm so all its traffic is serialized bits."""

    def __init__(self, inner: NodeAlgorithm):
        self._inner = inner
        self.bits_sent = 0

    def setup(self, ctx: NodeContext) -> None:
        self._inner.setup(ctx)

    def compose(self, ctx: NodeContext):
        out = self._inner.compose(ctx) or {}
        encoded = {}
        for port, msg in out.items():
            wire = _encode_message(msg)
            self.bits_sent += len(wire)
            encoded[port] = wire
        return encoded

    def deliver(self, ctx: NodeContext, inbox: List[Optional[Any]]) -> None:
        decoded: List[Optional[Any]] = []
        for msg in inbox:
            if msg is None:
                decoded.append(None)
            elif isinstance(msg, Bits):
                decoded.append(_decode_message(msg))
            else:
                raise SimulationError(
                    "strict mode received a non-Bits message: the peer is "
                    "not wire-wrapped"
                )
        self._inner.deliver(ctx, decoded)


def wire_wrapped(factory: Callable[[], NodeAlgorithm]) -> Callable[[], WireWrapped]:
    """Factory adapter: ``run_sync(g, wire_wrapped(ElectAlgorithm), ...)``."""

    def make() -> WireWrapped:
        return WireWrapped(factory())

    return make
