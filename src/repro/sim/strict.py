"""Byte-honest execution: every message crosses the wire as a bitstring.

:class:`WireWrapped` adapts any node algorithm whose messages are COM
tuples ``(port, View)`` (all the election algorithms in this library):
outgoing messages are serialized with the view wire format, incoming
bitstrings are decoded back into interned views before delivery.  Because
decoding re-interns, the wrapped algorithm sees *the same objects* it
would have seen in the fast path — the tests demand bit-identical outputs
— while the engine genuinely only ever transports ``Bits``.

This is the strongest form of the information-boundary guarantee: no
shared-memory channel exists at all.

The round-level message plane (:class:`MessagePlane`) is the strict
path's dedup layer: the sync engine's flat-array delivery already hands
one ``Bits`` object to every receiver of a payload, and the plane closes
the loop on the codec side — each distinct ``(port, View)`` outgoing
message is encoded once and each distinct wire string decoded once per
run, no matter how many nodes send or receive it in a round.
:func:`wire_wrapped` shares one plane across all nodes of a run; its hit
counters feed the strict bench's breakdown records.  The pre-optimization
per-message path survives as :func:`seed_wire_wrapped`, the in-run
reference for ``speedup_vs_seed`` and the byte-parity tests.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import SimulationError
from repro.obs import core as obs
from repro.sim.local_model import NodeAlgorithm, NodeContext
from repro.views.view import View
from repro.views.wire import (
    _SEPARATOR,
    _decode_view_wire_uncached,
    _double,
    _encode_view_wire_uncached,
    decode_view_wire,
    encode_view_wire,
)

#: Every live plane, cleared by ``repro.views.clear_view_caches``: plane
#: entries key on interned-view identity and hold interned views, so a
#: plane surviving a cache clear must drop them with the intern table.
_LIVE_PLANES: "weakref.WeakSet[MessagePlane]" = weakref.WeakSet()


def _clear_message_planes() -> None:
    for plane in list(_LIVE_PLANES):
        plane.clear()


def _check_com_message(msg: Any) -> Tuple[int, View]:
    if (
        isinstance(msg, tuple)
        and len(msg) == 2
        and isinstance(msg[0], int)
        and isinstance(msg[1], View)
    ):
        return msg
    raise SimulationError(
        f"strict mode supports COM messages (port, View); got {type(msg).__name__}"
    )


def _encode_message(msg: Any) -> Bits:
    port, view = _check_com_message(msg)
    return concat_bits(
        [encode_uint(0), encode_uint(port), encode_view_wire(view)]
    )


def _decode_message(bits: Bits) -> Any:
    fields = decode_concat(bits)
    kind = decode_uint(fields[0])
    if kind == 0:
        if len(fields) != 3:
            raise SimulationError("malformed strict COM message")
        return (decode_uint(fields[1]), decode_view_wire(fields[2]))
    raise SimulationError(f"unknown strict message kind {kind}")


def _encode_message_seed(msg: Any) -> Bits:
    """The seed path: full-DAG encode per message, no caches anywhere."""
    port, view = _check_com_message(msg)
    return concat_bits(
        [encode_uint(0), encode_uint(port), _encode_view_wire_uncached(view)]
    )


def _decode_message_seed(bits: Bits) -> Any:
    """The seed path: every record of every message parsed on arrival."""
    fields = decode_concat(bits)
    kind = decode_uint(fields[0])
    if kind == 0:
        if len(fields) != 3:
            raise SimulationError("malformed strict COM message")
        return (decode_uint(fields[1]), _decode_view_wire_uncached(fields[2]))
    raise SimulationError(f"unknown strict message kind {kind}")


class MessagePlane:
    """Per-run message dedup shared by every node of a strict execution.

    Keys are exact — ``(port, id(view))`` on the way out (views are
    interned, identity is structural equality) and the wire string on
    the way in — so a hit returns the byte-identical ``Bits`` / message
    tuple the per-node codec would produce: ``bits_sent`` accounting and
    strict records are unchanged.  ``clear_view_caches`` empties every
    live plane; create one plane per run (``wire_wrapped`` does) or pass
    a long-lived one explicitly to read its hit counters.
    """

    __slots__ = (
        "_encode_cache",
        "_decode_cache",
        "_doubled_view",
        "encode_calls",
        "encode_hits",
        "decode_calls",
        "decode_hits",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._encode_cache: Dict[Tuple[int, int], Bits] = {}
        self._decode_cache: Dict[str, Any] = {}
        self._doubled_view: Dict[int, str] = {}
        self.encode_calls = 0
        self.encode_hits = 0
        self.decode_calls = 0
        self.decode_hits = 0
        _LIVE_PLANES.add(self)
        # plane creation is a per-run boundary, not a per-message event:
        # the encode/decode hot paths stay uninstrumented
        obs.inc("strict_planes_created")

    def encode(self, msg: Any) -> Bits:
        self.encode_calls += 1
        port, view = _check_com_message(msg)
        key = (port, id(view))
        wire = self._encode_cache.get(key)
        if wire is not None:
            self.encode_hits += 1
            return wire
        # concat_bits([a, b, c]) is join(doubled parts, "01"); the view
        # wire dominates the message, so its doubled form is cached per
        # view rather than re-doubled for every port it is sent through
        dview = self._doubled_view.get(id(view))
        if dview is None:
            dview = _double(encode_view_wire(view).as_str())
            self._doubled_view[id(view)] = dview
        wire = Bits._unsafe(
            _SEPARATOR.join(
                ("00", _double(encode_uint(port).as_str()), dview)
            )
        )
        self._encode_cache[key] = wire
        return wire

    def decode(self, bits: Bits) -> Any:
        self.decode_calls += 1
        key = bits.as_str()
        msg = self._decode_cache.get(key)
        if msg is not None:
            self.decode_hits += 1
            return msg
        msg = _decode_message(bits)
        self._decode_cache[key] = msg
        return msg

    def clear(self) -> None:
        """Drop the dedup entries (hit counters are left running)."""
        self._encode_cache.clear()
        self._decode_cache.clear()
        self._doubled_view.clear()

    def stats(self) -> Dict[str, int]:
        """The hit counters, in bench-record field names."""
        return {
            "encode_calls": self.encode_calls,
            "encode_hits": self.encode_hits,
            "decode_calls": self.decode_calls,
            "decode_hits": self.decode_hits,
        }


class WireWrapped:
    """Wrap a node algorithm so all its traffic is serialized bits."""

    def __init__(self, inner: NodeAlgorithm, plane: Optional[MessagePlane] = None):
        self._inner = inner
        self.bits_sent = 0
        if plane is not None:
            self._encode: Callable[[Any], Bits] = plane.encode
            self._decode: Callable[[Bits], Any] = plane.decode
        else:
            self._encode = _encode_message
            self._decode = _decode_message

    def setup(self, ctx: NodeContext) -> None:
        self._inner.setup(ctx)

    def compose(self, ctx: NodeContext):
        out = self._inner.compose(ctx) or {}
        encoded = {}
        encode = self._encode
        for port, msg in out.items():
            wire = encode(msg)
            self.bits_sent += len(wire)
            encoded[port] = wire
        return encoded

    def deliver(self, ctx: NodeContext, inbox: List[Optional[Any]]) -> None:
        decoded: List[Optional[Any]] = []
        decode = self._decode
        for msg in inbox:
            if msg is None:
                decoded.append(None)
            elif isinstance(msg, Bits):
                decoded.append(decode(msg))
            else:
                raise SimulationError(
                    "strict mode received a non-Bits message: the peer is "
                    "not wire-wrapped"
                )
        self._inner.deliver(ctx, decoded)


class _SeedWireWrapped(WireWrapped):
    """The pre-optimization byte path: per-message full-DAG encode and
    per-message decode, bypassing every codec cache.  Exists so the
    bench can time the seed implementation in-run and so the parity
    tests can pin the fast path byte-identical to it."""

    def __init__(self, inner: NodeAlgorithm):
        super().__init__(inner)
        self._encode = _encode_message_seed
        self._decode = _decode_message_seed


def wire_wrapped(
    factory: Callable[[], NodeAlgorithm],
    plane: Optional[MessagePlane] = None,
) -> Callable[[], WireWrapped]:
    """Factory adapter: ``run_sync(g, wire_wrapped(ElectAlgorithm), ...)``.

    All nodes built by the returned factory share one message plane, so
    a payload sent (or received) by many nodes in a round is encoded
    (decoded) once.  Pass ``plane`` to share a plane across runs or to
    read its hit counters afterwards."""
    if plane is None:
        plane = MessagePlane()
    shared = plane

    def make() -> WireWrapped:
        return WireWrapped(factory(), shared)

    return make


def seed_wire_wrapped(
    factory: Callable[[], NodeAlgorithm],
) -> Callable[[], WireWrapped]:
    """Factory adapter for the seed (uncached, per-message) byte path —
    the strict bench's in-run ``speedup_vs_seed`` reference."""

    def make() -> WireWrapped:
        return _SeedWireWrapped(factory())

    return make
