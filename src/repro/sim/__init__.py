"""Simulation of the LOCAL model (Peleg) used by the paper.

Communication proceeds in synchronous rounds; in each round every node may
exchange arbitrary messages with its neighbors and do arbitrary local
computation.  Nodes are anonymous: a node algorithm sees only

* its own degree,
* the advice bitstring (identical at every node),
* per-round messages, indexed by the *local port* they arrived through.

The engine enforces this boundary structurally: algorithms receive a
:class:`NodeContext`, never the graph.

:class:`SyncEngine` is the reference executor; :class:`AsyncEngine` runs
the same node algorithms under adversarial message delays using round
time-stamps — the paper's remark that the synchronous process can be
simulated asynchronously — and is required by the tests to produce
identical outputs.  Delay adversaries are pluggable, named and seeded
(:mod:`repro.sim.schedulers`): the conformance oracle fans every corpus
entry out over a deterministic roster of them.

:class:`ViewAccumulator` implements the COM(i) subroutine (Algorithm 1):
repeated full exchanges after which a node holds its augmented truncated
view at depth equal to the number of rounds elapsed.
"""

from repro.sim.local_model import (
    NodeAlgorithm,
    NodeContext,
    RunResult,
    SyncEngine,
    run_sync,
)
from repro.sim.com import ComMessage, ViewAccumulator
from repro.sim.async_model import AsyncEngine, run_async
from repro.sim.schedulers import (
    DelayOneNodeScheduler,
    RandomDelayScheduler,
    ReverseDeliveryScheduler,
    Schedule,
    Scheduler,
    make_schedules,
)
from repro.sim.strict import (
    MessagePlane,
    WireWrapped,
    seed_wire_wrapped,
    wire_wrapped,
)
from repro.sim.trace import RoundTrace, Tracer, message_cost, view_dag_size

__all__ = [
    "NodeAlgorithm",
    "NodeContext",
    "RunResult",
    "SyncEngine",
    "run_sync",
    "ComMessage",
    "ViewAccumulator",
    "AsyncEngine",
    "run_async",
    "Scheduler",
    "Schedule",
    "RandomDelayScheduler",
    "DelayOneNodeScheduler",
    "ReverseDeliveryScheduler",
    "make_schedules",
    "WireWrapped",
    "wire_wrapped",
    "seed_wire_wrapped",
    "MessagePlane",
    "Tracer",
    "RoundTrace",
    "message_cost",
    "view_dag_size",
]
