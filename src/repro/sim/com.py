"""The COM subroutine (Algorithm 1) as reusable node-side machinery.

``COM(i)``: send B^i(u) to all neighbors; receive B^i(v) from each neighbor
v.  After executing COM(0..t-1), a node holds its augmented truncated view
at depth t.

A message must let the receiver reconstruct its own view, which requires
the *remote* port number of each incident edge; the sender therefore tags
the message with the port it is sending through (an "arbitrary message" in
the LOCAL model).  :class:`ViewAccumulator` packages the send/absorb pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.views.view import View

#: (sender's port for this edge, sender's current view)
ComMessage = Tuple[int, View]


class ViewAccumulator:
    """Node-side state for iterated COM.

    After construction the node holds B^0 (its degree); each
    :meth:`absorb` of a full inbox advances the view by one depth.
    """

    __slots__ = ("degree", "view")

    def __init__(self, degree: int):
        self.degree = degree
        self.view: View = View.make(degree, ())

    @property
    def depth(self) -> int:
        """Current view depth (= number of COM rounds absorbed)."""
        return self.view.depth

    def outgoing(self) -> Dict[int, ComMessage]:
        """COM send phase: my current view on every port, tagged with the
        sending port so the receiver learns the remote port number."""
        return {p: (p, self.view) for p in range(self.degree)}

    def absorb(self, inbox: List[Optional[Any]]) -> View:
        """COM receive phase: combine neighbor views (all at my current
        depth) into my view at depth+1.  Requires a message on every port —
        in the synchronous model all neighbors execute COM in lockstep."""
        if len(inbox) != self.degree:
            raise SimulationError(
                f"inbox has {len(inbox)} slots for a degree-{self.degree} node"
            )
        children = []
        for p, msg in enumerate(inbox):
            if msg is None:
                raise SimulationError(
                    f"COM round missing a message on port {p}; neighbors must "
                    "run COM in lockstep"
                )
            remote_port, neighbor_view = msg
            if not isinstance(neighbor_view, View):
                raise SimulationError(
                    f"COM message on port {p} does not carry a View"
                )
            if neighbor_view.depth != self.view.depth:
                raise SimulationError(
                    f"COM depth mismatch on port {p}: neighbor sent depth "
                    f"{neighbor_view.depth}, expected {self.view.depth}"
                )
            children.append((remote_port, neighbor_view))
        self.view = View.make(self.degree, tuple(children))
        return self.view
