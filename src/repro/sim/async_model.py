"""Asynchronous execution of synchronous node algorithms.

The paper notes that "the synchronous process of the LOCAL model can be
simulated in an asynchronous network using time-stamps".  This module is
that simulation (an alpha-synchronizer): every message is stamped with the
sender's local round number; a node buffers incoming messages per round and
advances its local round only once it holds the full set of round-r
messages from all its ports.  Message delays are adversarial but finite —
here, seeded-random per message — and FIFO per link is *not* assumed.

Any :class:`~repro.sim.local_model.NodeAlgorithm` runs unmodified; the
tests require bit-identical outputs to :class:`SyncEngine`.

Message delays come from a pluggable :class:`~repro.sim.schedulers.Scheduler`
adversary; the default (``seed=s`` with no explicit scheduler) is the
historical seeded-uniform adversary, bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.errors import PortNumberingError, SimulationError
from repro.graphs.port_graph import PortGraph
from repro.sim.local_model import NodeAlgorithm, NodeContext, RunResult
from repro.sim.schedulers import RandomDelayScheduler, Scheduler
from repro.util.rng import RngLike


class AsyncEngine:
    """Event-driven executor with adversarial per-message delays."""

    def __init__(
        self,
        graph: PortGraph,
        algorithm_factory: Callable[[], NodeAlgorithm],
        advice: Optional[Bits] = None,
        seed: RngLike = 0,
        max_delay: float = 10.0,
        max_rounds: int = 10_000,
        max_events: int = 5_000_000,
        scheduler: Optional[Scheduler] = None,
        advice_map: Optional[Dict[int, Bits]] = None,
    ):
        """``scheduler`` overrides the default seeded-uniform adversary
        (``seed``/``max_delay`` are then ignored).  ``advice_map`` gives
        per-node advice, mirroring :class:`~repro.sim.local_model.SyncEngine`;
        mutually exclusive with ``advice``.
        """
        if advice is not None and advice_map is not None:
            raise SimulationError(
                "pass either identical advice or a per-node advice_map, not both"
            )
        self._g = graph
        self._factory = algorithm_factory
        self._advice = advice
        self._advice_map = advice_map
        if scheduler is None:
            scheduler = RandomDelayScheduler(seed, max_delay)
        self._scheduler = scheduler
        self._max_rounds = max_rounds
        self._max_events = max_events

    def run(self) -> RunResult:
        g = self._g
        from repro.graphs.csr import csr_of

        csr = csr_of(g)
        n = csr.n
        degrees = csr.degrees
        offsets = csr.offsets
        dst_node = csr.neighbors
        dst_port = csr.remote_ports
        scheduler = self._scheduler
        bind = getattr(scheduler, "bind", None)
        if bind is not None:
            bind(n)
        algorithms = [self._factory() for _ in range(n)]
        if self._advice_map is not None:
            contexts = [
                NodeContext(degrees[v], self._advice_map.get(v))
                for v in range(n)
            ]
        else:
            contexts = [
                NodeContext(degrees[v], self._advice) for v in range(n)
            ]
        # per node: local round counter and round -> port -> message buffers
        local_round = [0] * n
        buffers: List[Dict[int, List[Optional[Any]]]] = [dict() for _ in range(n)]
        total_messages = 0

        heap: List[Tuple[float, int, int, int, int, Any]] = []
        counter = itertools.count()

        def send_round(u: int) -> None:
            """Node u composes and ships its round-(local_round[u]+1)
            messages with random delays and a round stamp."""
            nonlocal total_messages, undecided
            ctx_u = contexts[u]
            was_undecided = ctx_u._output_round is None
            out = algorithms[u].compose(ctx_u) or {}
            if was_undecided and ctx_u._output_round is not None:
                undecided -= 1
            stamp = local_round[u] + 1
            base = offsets[u]
            for port, msg in out.items():
                if not (0 <= port < degrees[u]):
                    raise PortNumberingError(
                        f"node {u} has degree {degrees[u]}; "
                        f"port {port} does not exist"
                    )
                slot = base + port
                v = dst_node[slot]
                q = dst_port[slot]
                seq = next(counter)
                delay = scheduler.delay(u, port, v, q, stamp, seq)
                if not delay > 0:
                    raise SimulationError(
                        f"scheduler returned a non-positive delay {delay}; "
                        "adversarial delays must be positive and finite"
                    )
                heapq.heappush(heap, (delay + _now[0], seq, v, q, stamp, msg))
                total_messages += 1

        def round_complete(v: int, stamp: int) -> bool:
            buf = buffers[v].get(stamp)
            if buf is None:
                # a node with sending neighbors always gets messages; an
                # all-None round is complete only for expected-empty inboxes,
                # which COM-style algorithms never produce. Treat missing
                # buffer as incomplete.
                return False
            return all(slot is not _PENDING for slot in buf)

        _PENDING = object()
        _now = [0.0]

        for v in range(n):
            algorithms[v].setup(contexts[v])
        # decremented on every output transition: replaces the historical
        # O(n) all(...) scan per delivered round
        undecided = sum(
            1 for v in range(n) if contexts[v]._output_round is None
        )
        if not undecided:
            return RunResult(
                outputs={v: contexts[v].output_value for v in range(n)},
                output_round={v: contexts[v]._output_round for v in range(n)},
                rounds=0,
                total_messages=0,
            )

        # everyone launches round 1
        for v in range(n):
            buffers[v][local_round[v] + 1] = [_PENDING] * degrees[v]
            send_round(v)

        events = 0
        while heap:
            events += 1
            if events > self._max_events:
                raise SimulationError(
                    f"asynchronous run exceeded max_events={self._max_events}"
                )
            time, _, v, q, stamp, msg = heapq.heappop(heap)
            _now[0] = time
            buf = buffers[v].setdefault(stamp, None)
            if buf is None:
                buffers[v][stamp] = buf = [_PENDING] * degrees[v]
            if buf[q] is not _PENDING:
                raise SimulationError(
                    f"duplicate round-{stamp} message on port {q} of a node"
                )
            buf[q] = msg
            # advance this node through every now-complete round in order
            while round_complete(v, local_round[v] + 1):
                stamp_done = local_round[v] + 1
                inbox = buffers[v].pop(stamp_done)
                local_round[v] = stamp_done
                ctx = contexts[v]
                ctx._round = stamp_done
                was_undecided = ctx._output_round is None
                algorithms[v].deliver(ctx, inbox)
                if was_undecided and ctx._output_round is not None:
                    undecided -= 1
                if not undecided:
                    return RunResult(
                        outputs={
                            u: contexts[u].output_value for u in range(n)
                        },
                        output_round={
                            u: contexts[u]._output_round for u in range(n)
                        },
                        rounds=max(local_round),
                        total_messages=total_messages,
                    )
                if stamp_done >= self._max_rounds:
                    raise SimulationError(
                        f"a node exceeded max_rounds={self._max_rounds} "
                        "without all outputs present"
                    )
                send_round(v)

        stuck = [v for v in range(n) if not contexts[v].has_output]
        raise SimulationError(
            f"asynchronous run drained all events but {len(stuck)} nodes "
            f"never output (first few: {stuck[:5]})"
        )


def run_async(
    graph: PortGraph,
    algorithm_factory: Callable[[], NodeAlgorithm],
    advice: Optional[Bits] = None,
    seed: RngLike = 0,
    **kwargs,
) -> RunResult:
    """One-shot convenience wrapper around :class:`AsyncEngine`."""
    return AsyncEngine(graph, algorithm_factory, advice, seed=seed, **kwargs).run()
