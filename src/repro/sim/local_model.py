"""Synchronous LOCAL-model engine.

Round semantics (matching the paper's time accounting):

* Before any communication, every node's algorithm runs :meth:`setup`
  (an algorithm that outputs here has election time 0).
* Communication round ``i`` (``i = 1, 2, ...``): every node composes its
  outgoing messages from its current state, then all messages are
  delivered simultaneously, then every node processes its inbox.  A node
  whose output is produced while processing round ``i`` has election time
  ``i`` — "after ``i`` rounds", e.g. Algorithm ``Elect`` outputs at time
  exactly phi.
* The run's *time* is the maximum election time over nodes, i.e. the
  paper's "minimum number of rounds sufficient to complete election by all
  nodes".

Nodes keep participating (relaying COM messages) after producing their
output; the engine stops as soon as every node has output.  This mirrors
standard LOCAL usage where "termination" means committing an output, and
sidesteps the pseudo-code subtlety that a node's repeat-loop may need one
more message from a neighbor that already decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.coding.bitstring import Bits
from repro.errors import AlgorithmError, SimulationError
from repro.graphs.port_graph import PortGraph
from repro.obs import core as obs
from repro.views.view import View

#: Types a message may be built from in paranoid mode.
_ALLOWED_MESSAGE_TYPES = (int, str, bool, type(None), View, Bits)


def _check_message(msg: Any) -> None:
    if isinstance(msg, _ALLOWED_MESSAGE_TYPES):
        return
    if isinstance(msg, (tuple, frozenset)):
        for item in msg:
            _check_message(item)
        return
    raise AlgorithmError(
        f"message contains a {type(msg).__name__}; only immutable primitives, "
        "tuples, frozensets, Views and Bits may be sent (anonymous nodes must "
        "not share mutable state)"
    )


class NodeContext:
    """Everything a node algorithm is allowed to see."""

    __slots__ = ("_degree", "_advice", "_output", "_output_round", "_round")

    def __init__(self, degree: int, advice: Optional[Bits]):
        self._degree = degree
        self._advice = advice
        self._output: Any = None
        self._output_round: Optional[int] = None
        self._round = 0

    @property
    def degree(self) -> int:
        """Degree of this node (the only initial knowledge besides advice)."""
        return self._degree

    @property
    def advice(self) -> Optional[Bits]:
        """The oracle's advice string (identical at every node), or None."""
        return self._advice

    @property
    def round_index(self) -> int:
        """Number of completed communication rounds."""
        return self._round

    @property
    def has_output(self) -> bool:
        return self._output_round is not None

    @property
    def output_value(self) -> Any:
        return self._output

    def output(self, value: Any) -> None:
        """Commit this node's election output (a sequence of port numbers).

        May be called once; the node may keep sending messages afterwards.
        """
        if self._output_round is not None:
            raise AlgorithmError("node attempted to output twice")
        self._output = value
        self._output_round = self._round


class NodeAlgorithm(Protocol):
    """Per-node deterministic algorithm.  One instance per node."""

    def setup(self, ctx: NodeContext) -> None:
        """Initialization before any communication (may output)."""

    def compose(self, ctx: NodeContext) -> Optional[Dict[int, Any]]:
        """Messages to send this round: ``{local_port: message}`` (or None).
        Called every round, including after the node has output."""

    def deliver(self, ctx: NodeContext, inbox: List[Optional[Any]]) -> None:
        """Process the messages received this round; ``inbox[p]`` is the
        message that arrived through local port ``p`` (None if none).

        The engine reuses the inbox buffer across rounds: consume it
        during the call, do not retain or mutate it."""


@dataclass
class RunResult:
    """Outcome of a simulation run."""

    outputs: Dict[int, Any]
    output_round: Dict[int, int]
    rounds: int
    total_messages: int
    per_round_messages: List[int] = field(default_factory=list)

    @property
    def election_time(self) -> int:
        """The paper's election time: max over nodes of the round at which
        the node produced its output."""
        return max(self.output_round.values()) if self.output_round else 0


class SyncEngine:
    """Synchronous executor; see module docstring for round semantics."""

    def __init__(
        self,
        graph: PortGraph,
        algorithm_factory: Callable[[], NodeAlgorithm],
        advice: Optional[Bits] = None,
        max_rounds: int = 10_000,
        paranoid: bool = False,
        tracer: Optional[Any] = None,
        advice_map: Optional[Dict[int, Bits]] = None,
    ):
        """``advice_map`` gives *per-node* advice (the "informative
        labeling scheme" regime the paper contrasts with its identical-
        advice model; see Section 1).  Mutually exclusive with ``advice``.
        """
        if advice is not None and advice_map is not None:
            raise SimulationError(
                "pass either identical advice or a per-node advice_map, not both"
            )
        self._g = graph
        self._factory = algorithm_factory
        self._advice = advice
        self._advice_map = advice_map
        self._max_rounds = max_rounds
        self._paranoid = paranoid
        self._tracer = tracer

    def run(self) -> RunResult:
        # the no-op path costs one flag check: the hot loops below carry
        # no per-round or per-message instrumentation — per-round
        # accounting is the Tracer's job, folded into the span on exit
        if not obs.enabled():
            return self._run_impl(self._tracer)
        with obs.span("sim.run") as sp:
            tracer = self._tracer
            if tracer is None:
                from repro.sim.trace import Tracer

                tracer = Tracer()
            result = self._run_impl(tracer)
            sp.set("nodes", self._g.n)
            sp.set("rounds", result.rounds)
            sp.set("total_messages", result.total_messages)
            sp.set("per_round_messages", list(result.per_round_messages))
            if hasattr(tracer, "per_round"):  # a stub tracer may lack it
                summary = tracer.summary()
                sp.set("cost_dag_nodes", summary["cost_dag_nodes"])
                sp.set("max_view_depth", summary["max_view_depth"])
                sp.set("per_round_costs", tracer.per_round())
            return result

    def _run_impl(self, tracer: Optional[Any]) -> RunResult:
        g = self._g
        # flat delivery arrays: the edge out of u through port p is slot
        # offsets[u] + p, landing in inbox neighbors[slot] at local port
        # remote_ports[slot] — no method call or tuple unpack per message
        from repro.graphs.csr import csr_of

        csr = csr_of(g)
        n = csr.n
        degrees = csr.degrees
        offsets = csr.offsets
        dst_node = csr.neighbors
        dst_port = csr.remote_ports
        algorithms = [self._factory() for _ in range(n)]
        if self._advice_map is not None:
            contexts = [
                NodeContext(degrees[v], self._advice_map.get(v))
                for v in range(n)
            ]
        else:
            contexts = [
                NodeContext(degrees[v], self._advice) for v in range(n)
            ]

        for v in range(n):
            algorithms[v].setup(contexts[v])
        undecided = sum(
            1 for v in range(n) if contexts[v]._output_round is None
        )

        per_round_messages: List[int] = []
        total_messages = 0
        rounds = 0
        # inbox buffers are allocated once and reused: delivered slots are
        # reset to None after each processing phase (O(messages), not O(m))
        inboxes: List[List[Optional[Any]]] = [
            [None] * degrees[v] for v in range(n)
        ]
        # per-port delivery targets resolved once over the flat arrays:
        # targets[u][p] is the (inbox buffer, remote port) the message out
        # of u through p lands in, so the delivery and reset loops do one
        # tuple unpack per message instead of re-deriving the CSR slot
        targets: List[List[Tuple[List[Optional[Any]], int]]] = [
            [
                (inboxes[dst_node[slot]], dst_port[slot])
                for slot in range(offsets[u], offsets[u] + degrees[u])
            ]
            for u in range(n)
        ]
        while undecided:
            if rounds >= self._max_rounds:
                stuck = [
                    v for v in range(n) if contexts[v]._output_round is None
                ]
                raise SimulationError(
                    f"simulation exceeded max_rounds={self._max_rounds}; "
                    f"{len(stuck)} nodes never output (first few: {stuck[:5]})"
                )
            rounds += 1
            # phase 1: everyone composes
            outboxes: List[Dict[int, Any]] = []
            round_messages = 0
            for v in range(n):
                ctx = contexts[v]
                was_undecided = ctx._output_round is None
                out = algorithms[v].compose(ctx) or {}
                if was_undecided and ctx._output_round is not None:
                    undecided -= 1
                if out:
                    dv = degrees[v]
                    for port, msg in out.items():
                        if not (0 <= port < dv):
                            raise AlgorithmError(
                                f"node sent on port {port} but has degree {dv}"
                            )
                        if self._paranoid:
                            _check_message(msg)
                    round_messages += len(out)
                outboxes.append(out)
            if tracer is not None:
                tracer.record_round(rounds, outboxes)  # after all compose
            # phase 2: simultaneous delivery, batched over the flat arrays
            for u in range(n):
                out = outboxes[u]
                if out:
                    tu = targets[u]
                    for port, msg in out.items():
                        buf, dp = tu[port]
                        buf[dp] = msg
            # phase 3: everyone processes
            for v in range(n):
                ctx = contexts[v]
                ctx._round = rounds
                was_undecided = ctx._output_round is None
                algorithms[v].deliver(ctx, inboxes[v])
                if was_undecided and ctx._output_round is not None:
                    undecided -= 1
            # reset exactly the delivered slots for the next round
            for u in range(n):
                out = outboxes[u]
                if out:
                    tu = targets[u]
                    for port in out:
                        buf, dp = tu[port]
                        buf[dp] = None
            total_messages += round_messages
            per_round_messages.append(round_messages)

        return RunResult(
            outputs={v: contexts[v].output_value for v in range(n)},
            output_round={v: contexts[v]._output_round for v in range(n)},
            rounds=rounds,
            total_messages=total_messages,
            per_round_messages=per_round_messages,
        )


def run_sync(
    graph: PortGraph,
    algorithm_factory: Callable[[], NodeAlgorithm],
    advice: Optional[Bits] = None,
    max_rounds: int = 10_000,
    paranoid: bool = False,
    tracer: Optional[Any] = None,
    advice_map: Optional[Dict[int, Bits]] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`SyncEngine`."""
    return SyncEngine(
        graph,
        algorithm_factory,
        advice,
        max_rounds=max_rounds,
        paranoid=paranoid,
        tracer=tracer,
        advice_map=advice_map,
    ).run()
