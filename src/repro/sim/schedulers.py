"""Adversarial message schedulers for the asynchronous engine.

The paper's guarantees are *schedule-independent*: the alpha-synchronizer
of :mod:`repro.sim.async_model` must reproduce the synchronous run under
every finite-delay adversary.  This module makes that claim testable at
scale by packaging adversaries as named, seeded, deterministic objects.

The seeding contract
    A scheduler is a pure function of its constructor arguments and the
    sequence of :meth:`Scheduler.delay` calls it receives.  The engine
    calls ``delay`` exactly once per message, in send order, so two runs
    with equal-constructed schedulers see identical delays — the whole
    async run is then deterministic, and a conformance record can name
    its schedule (``random-s7``, ``delay-node-2``, ``reverse``) and be
    reproduced bit-for-bit later.

Built-in adversaries
    * :class:`RandomDelayScheduler` — i.i.d. uniform delays from a seeded
      stream (the engine's historical behavior; ``AsyncEngine(seed=s)``
      still means exactly this).
    * :class:`DelayOneNodeScheduler` — one victim node receives every
      message late by a large factor; models a single slow host and
      stresses the per-round buffering (the victim's neighbors run many
      rounds ahead).
    * :class:`ReverseDeliveryScheduler` — of two messages sent at the
      same instant, the one sent *later* arrives *earlier* (delays are
      strictly decreasing in the global send index), so each compose
      batch is delivered in reverse port order and fresh rounds overtake
      stale ones whenever timing allows.  No FIFO assumption survives
      this adversary.

:func:`make_schedules` fans a ``(count, seed)`` pair into a deterministic
roster of named schedules — the per-corpus-entry fan-out used by the
conformance oracle (``repro conformance --schedules K``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Protocol

from repro.errors import SimulationError
from repro.util.rng import RngLike, make_rng


class Scheduler(Protocol):
    """The delay adversary: one positive delay per message, in send order.

    ``sender``/``send_port`` and ``receiver``/``recv_port`` identify the
    directed link, ``stamp`` is the sender's round number, and ``seq`` is
    the global send index (0, 1, 2, ... — strictly increasing).
    """

    def delay(
        self,
        sender: int,
        send_port: int,
        receiver: int,
        recv_port: int,
        stamp: int,
        seq: int,
    ) -> float:
        """Positive, finite delay for this message."""
        ...


class RandomDelayScheduler:
    """Seeded i.i.d. uniform delays in ``(0.01, max_delay)``.

    This is exactly the engine's historical adversary: an
    ``AsyncEngine(seed=s, max_delay=d)`` with no explicit scheduler
    behaves bit-for-bit as before.
    """

    def __init__(self, seed: RngLike = 0, max_delay: float = 10.0):
        if max_delay <= 0.01:
            raise SimulationError(f"max_delay must exceed 0.01, got {max_delay}")
        self._rng = make_rng(seed)
        self._max_delay = max_delay

    def delay(self, sender, send_port, receiver, recv_port, stamp, seq) -> float:
        return self._rng.uniform(0.01, self._max_delay)


class DelayOneNodeScheduler:
    """One victim node receives every message an order of magnitude late.

    ``victim_index`` is reduced modulo the number of nodes once the
    engine binds the scheduler to a graph, so one roster of schedules
    applies to corpora of mixed sizes.  Non-victim traffic keeps the
    seeded-uniform behavior, so the victim's neighbors genuinely race
    ahead and exercise the synchronizer's multi-round buffers.
    """

    def __init__(
        self,
        victim_index: int = 0,
        seed: RngLike = 0,
        max_delay: float = 10.0,
        slowdown: float = 25.0,
    ):
        if slowdown <= 1.0:
            raise SimulationError(f"slowdown must exceed 1, got {slowdown}")
        self._victim_index = victim_index
        self._victim = victim_index  # rebound per graph in bind()
        self._rng = make_rng(seed)
        self._max_delay = max_delay
        self._slowdown = slowdown

    def bind(self, num_nodes: int) -> None:
        self._victim = self._victim_index % num_nodes

    def delay(self, sender, send_port, receiver, recv_port, stamp, seq) -> float:
        base = self._rng.uniform(0.01, self._max_delay)
        if receiver == self._victim:
            return base * self._slowdown
        return base


class ReverseDeliveryScheduler:
    """Later sends arrive earlier: delay is strictly decreasing in ``seq``.

    ``delay(seq) = horizon / (seq + 1)`` — positive forever, and of any
    two messages sent at the same instant the higher-``seq`` one lands
    first.  Deterministic with no randomness at all.
    """

    def __init__(self, horizon: float = 64.0):
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self._horizon = horizon

    def delay(self, sender, send_port, receiver, recv_port, stamp, seq) -> float:
        return self._horizon / (seq + 1)


@dataclass(frozen=True)
class Schedule:
    """One named, reconstructible adversary: ``make()`` returns a fresh
    scheduler every time, so one Schedule can drive many runs."""

    name: str
    make: Callable[[], Scheduler]


def make_schedules(count: int, seed: int = 0) -> List[Schedule]:
    """The deterministic schedule roster for ``(count, seed)``.

    Cycles through the three adversary kinds, varying their parameters
    with the roster index so every slot is distinct: ``random-s<seed+i>``,
    ``reverse``, ``delay-node-<i//3>``, ``random-s<seed+i>``, ...,
    ``reverse-x2`` (doubled horizon), ...  The roster is a pure function
    of ``(count, seed)`` and a prefix of any longer roster with the same
    seed — the same contract the corpus registry keeps, so
    ``--schedules K`` records are stable under K.
    """
    if count < 0:
        raise SimulationError(f"schedule count must be >= 0, got {count}")
    roster: List[Schedule] = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            s = seed + i
            roster.append(
                Schedule(f"random-s{s}", lambda s=s: RandomDelayScheduler(s))
            )
        elif kind == 1:
            # successive reverse slots widen the horizon so no two roster
            # entries are the same adversary (the first keeps the plain
            # name existing records pin)
            mult = i // 3 + 1
            name = "reverse" if mult == 1 else f"reverse-x{mult}"
            roster.append(
                Schedule(
                    name,
                    lambda mult=mult: ReverseDeliveryScheduler(64.0 * mult),
                )
            )
        else:
            victim = i // 3
            s = seed + i
            roster.append(
                Schedule(
                    f"delay-node-{victim}",
                    lambda victim=victim, s=s: DelayOneNodeScheduler(
                        victim, seed=s
                    ),
                )
            )
    return roster
