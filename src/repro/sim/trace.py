"""Execution tracing: message complexity accounting for simulation runs.

The paper measures only time, but its related-work section is full of
message-complexity results (O(n log n) messages for rings, etc.), and any
practical assessment of the algorithms needs to know what COM actually
costs on the wire.  A :class:`Tracer` plugged into :class:`SyncEngine`
records, per round:

* message count;
* total *information* cost, in view-DAG nodes: a COM message carries an
  augmented truncated view, whose honest transmission cost is the size of
  its hash-consed DAG (repeated subtrees are sent once — the standard
  succinct-view encoding), plus O(1) per port tag;
* the maximum view depth in flight.

Non-view messages are charged a flat cost of 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from repro.views.view import View

_DAG_SIZE_CACHE: Dict[int, int] = {}


def view_dag_size(view: View) -> int:
    """Number of distinct subviews of ``view`` (its hash-consed DAG size).

    This is the honest cost of shipping the view once: each distinct
    subview is serialized a single time and referenced thereafter.
    """
    cached = _DAG_SIZE_CACHE.get(id(view))
    if cached is not None:
        return cached
    seen: Set[int] = set()
    stack = [view]
    while stack:
        v = stack.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        for _, child in v.children:
            if id(child) not in seen:
                stack.append(child)
    _DAG_SIZE_CACHE[id(view)] = len(seen)
    return len(seen)


def message_cost(msg: Any) -> int:
    """Information cost of one message, in DAG-node units."""
    if isinstance(msg, View):
        return view_dag_size(msg)
    if isinstance(msg, tuple):
        return sum(message_cost(item) for item in msg)
    return 1


@dataclass
class RoundTrace:
    """Statistics of one communication round."""

    round_index: int
    messages: int
    total_cost: int
    max_view_depth: int


@dataclass
class Tracer:
    """Collects per-round statistics; pass as ``tracer=`` to the engine."""

    rounds: List[RoundTrace] = field(default_factory=list)

    def record_round(self, round_index: int, outboxes: List[Dict[int, Any]]) -> None:
        messages = 0
        cost = 0
        max_depth = 0
        for outbox in outboxes:
            for msg in outbox.values():
                messages += 1
                cost += message_cost(msg)
                max_depth = max(max_depth, _max_view_depth(msg))
        self.rounds.append(
            RoundTrace(
                round_index=round_index,
                messages=messages,
                total_cost=cost,
                max_view_depth=max_depth,
            )
        )

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_cost(self) -> int:
        return sum(r.total_cost for r in self.rounds)

    def per_round(self) -> List[List[int]]:
        """JSON-safe per-round rows ``[round, messages, cost, depth]`` —
        the shape :mod:`repro.obs` span attributes and the trace
        exporters carry across process boundaries."""
        return [
            [r.round_index, r.messages, r.total_cost, r.max_view_depth]
            for r in self.rounds
        ]

    def summary(self) -> Dict[str, int]:
        return {
            "rounds": len(self.rounds),
            "messages": self.total_messages,
            "cost_dag_nodes": self.total_cost,
            "max_view_depth": max(
                (r.max_view_depth for r in self.rounds), default=0
            ),
        }


def _max_view_depth(msg: Any) -> int:
    if isinstance(msg, View):
        return msg.depth
    if isinstance(msg, tuple):
        return max((_max_view_depth(m) for m in msg), default=0)
    return 0
