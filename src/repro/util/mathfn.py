"""Integer-exact math helpers used throughout the reproduction.

The paper's Theorem 4.1 manipulates ``blog phic``, ``blog log phic``,
``log* phi`` and the tower function ``ic`` (defined by ``0c = 1`` and
``(i+1)c = c ** (ic)``).  All of these must be computed exactly on integers --
floating point would silently corrupt the advice for large ``phi`` -- so we
implement them with integer arithmetic only.
"""

from __future__ import annotations


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``, exactly."""
    if x <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {x}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``, exactly."""
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {x}")
    return (x - 1).bit_length()


def ilog_iter(x: int, times: int) -> int:
    """Apply ``floor_log2`` iteratively ``times`` times to ``x``.

    ``ilog_iter(x, 2)`` is the paper's ``blog log xc``.  Raises ``ValueError``
    if an intermediate value drops to zero or below (the logarithm would be
    undefined), mirroring the preconditions of Theorem 4.1.
    """
    for _ in range(times):
        x = floor_log2(x)
        if x <= 0 and _ < times - 1:
            raise ValueError("iterated logarithm undefined: value reached <= 0")
    return x


def log_star(x: int, base: int = 2) -> int:
    """Return ``log*`` of ``x``: the number of times ``log_base`` must be
    iterated, starting from ``x``, before the value drops to <= 1.

    Uses the integer floor logarithm at each step.  ``log_star(1) == 0``,
    ``log_star(2) == 1``, ``log_star(4) == 2``, ``log_star(16) == 3``,
    ``log_star(65536) == 4``.
    """
    if x < 1:
        raise ValueError(f"log_star requires x >= 1, got {x}")
    if base < 2:
        raise ValueError(f"log_star requires base >= 2, got {base}")
    count = 0
    while x > 1:
        # floor log base `base`
        lg = 0
        y = x
        while y >= base:
            y //= base
            lg += 1
        x = lg
        count += 1
    return count


def tower(i: int, c: int) -> int:
    """The paper's tower notation ``ic``: ``tower(0, c) == 1`` and
    ``tower(i+1, c) == c ** tower(i, c)``.

    Guarded against astronomically large results: raises ``OverflowError``
    if the result would exceed 2**20 bits (callers in Theorem 4.1 only ever
    need small towers because ``P4 = tower(log*(phi)+1, 2) - 1``).
    """
    if i < 0:
        raise ValueError(f"tower requires i >= 0, got {i}")
    if c < 2:
        raise ValueError(f"tower requires c >= 2, got {c}")
    value = 1
    for _ in range(i):
        if value > 20:  # c**21 can already be enormous; bound the exponent
            raise OverflowError(
                f"tower({i}, {c}) is astronomically large and cannot be "
                "materialized as an integer round count"
            )
        value = c**value
    return value


def tower_index(x: int, c: int = 2) -> int:
    """Return the smallest ``i`` with ``tower(i, c) >= x`` (inverse tower).

    This is the ``k*`` extraction used in the proof of Theorem 4.2 part 4,
    where ``2^{k*}c <= alpha < 2^{(k*+1)}c``.
    """
    if x < 1:
        raise ValueError(f"tower_index requires x >= 1, got {x}")
    i = 0
    value = 1
    while value < x:
        value = c**value
        i += 1
    return i
