"""Small utilities shared across the library: integer logarithms, the tower
function :math:`{}^{i}c` and :math:`\\log^*` used by Theorems 4.1/4.2, and
deterministic RNG helpers."""

from repro.util.mathfn import (
    ceil_log2,
    floor_log2,
    ilog_iter,
    log_star,
    tower,
    tower_index,
)
from repro.util.rng import make_rng, sample_distinct

__all__ = [
    "ceil_log2",
    "floor_log2",
    "ilog_iter",
    "log_star",
    "tower",
    "tower_index",
    "make_rng",
    "sample_distinct",
]
