"""Deterministic randomness helpers.

Every stochastic choice in the library (random regular graphs, sampled
lower-bound families, fuzzed port assignments) goes through
:func:`make_rng` so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar, Union

T = TypeVar("T")

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing generator, or None.

    Passing an existing generator returns it unchanged (so composed
    constructions can share one stream); passing ``None`` yields a generator
    seeded with 0 for reproducibility-by-default.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0)
    return random.Random(seed)


def sample_distinct(
    rng: random.Random, population: Sequence[T], k: int, max_tries: Optional[int] = None
) -> list:
    """Sample ``k`` distinct elements from ``population`` (without
    replacement), raising ``ValueError`` if the population is too small."""
    if k > len(population):
        raise ValueError(
            f"cannot sample {k} distinct elements from a population of "
            f"{len(population)}"
        )
    return rng.sample(list(population), k)
