"""Algorithm 8 (Election1..4) and the Theorem 4.1 advice strings.

The four milestones trade election time against advice size:

=========  =====================  ==========================  ===============
milestone  advice A_i             round budget T_i            advice size
=========  =====================  ==========================  ===============
1          bin(phi)               D + phi + c                 O(log phi)
2          bin(floor log phi)     D + c * phi                 O(log log phi)
3          bin(floor loglog phi)  D + phi ** c                O(log log log phi)
4          bin(log* phi)          D + c ** phi                O(log log* phi)
=========  =====================  ==========================  ===============

Each Election_i decodes its integer a from the advice, reconstructs an
upper bound P_i >= phi, and runs Generic(P_i); Lemma 4.1 then gives time
<= D + P_i + 1 <= T_i.

Small-phi edge cases: the iterated logarithms are undefined at phi = 1
(and loglog at phi < 2), so the oracle clamps the argument upward before
taking logs — the reconstructed P_i only grows, so P_i >= phi is
preserved and the advice stays O(1) bits in this regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.integers import decode_uint, encode_uint
from repro.core.generic import GenericAlgorithm
from repro.core.verify import verify_election
from repro.errors import AdviceError, AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.local_model import run_sync
from repro.util.mathfn import floor_log2, log_star, tower
from repro.views.election_index import election_index

MILESTONES = (1, 2, 3, 4)


def election_advice(phi: int, milestone: int) -> Bits:
    """The oracle's advice A_milestone for a graph of election index phi."""
    if phi < 1:
        raise AdviceError(f"election index must be >= 1, got {phi}")
    if milestone == 1:
        return encode_uint(phi)
    if milestone == 2:
        return encode_uint(floor_log2(phi))
    if milestone == 3:
        return encode_uint(floor_log2(max(1, floor_log2(max(2, phi)))))
    if milestone == 4:
        return encode_uint(log_star(phi))
    raise AdviceError(f"unknown milestone {milestone}; must be in {MILESTONES}")


def round_parameter(advice_value: int, milestone: int) -> int:
    """The node-side reconstruction P_i from the decoded advice integer."""
    if milestone == 1:
        return advice_value  # P1 = phi
    if milestone == 2:
        return 2 ** (advice_value + 1) - 1  # P2 = 2^{floor log phi + 1} - 1
    if milestone == 3:
        return 2 ** (2 ** (advice_value + 1)) - 1
    if milestone == 4:
        return tower(advice_value + 1, 2) - 1
    raise AdviceError(f"unknown milestone {milestone}; must be in {MILESTONES}")


def milestone_round_budget(diameter: int, phi: int, milestone: int, c: int) -> int:
    """The theorem's time budget T_i = D + A(phi, c)."""
    if c < 2:
        raise AdviceError(f"Theorem 4.1 requires an integer constant c > 1, got {c}")
    if milestone == 1:
        return diameter + phi + c
    if milestone == 2:
        return diameter + c * phi
    if milestone == 3:
        return diameter + phi**c
    if milestone == 4:
        return diameter + c**phi
    raise AdviceError(f"unknown milestone {milestone}; must be in {MILESTONES}")


def make_election_algorithm(milestone: int) -> Callable[[], "ElectionAlgorithm"]:
    """Factory-of-factories: the per-node algorithm class for Election_i."""

    def factory() -> "ElectionAlgorithm":
        return ElectionAlgorithm(milestone)

    return factory


class ElectionAlgorithm:
    """Per-node Election_i: decode the advice integer, compute P_i, and
    delegate every round to Generic(P_i)."""

    def __init__(self, milestone: int):
        if milestone not in MILESTONES:
            raise AdviceError(f"unknown milestone {milestone}")
        self._milestone = milestone
        self._inner: Optional[GenericAlgorithm] = None

    def setup(self, ctx) -> None:
        if ctx.advice is None:
            raise AdviceError("Election_i requires the oracle's advice")
        value = decode_uint(ctx.advice)
        p = round_parameter(value, self._milestone)
        self._inner = GenericAlgorithm(max(1, p))
        self._inner.setup(ctx)

    def compose(self, ctx):
        return self._inner.compose(ctx)

    def deliver(self, ctx, inbox) -> None:
        self._inner.deliver(ctx, inbox)


@dataclass
class MilestoneRunRecord:
    """Record of one Election_i run, with the theorem's budgets."""

    milestone: int
    n: int
    phi: int
    diameter: int
    advice_bits: int
    round_parameter: int
    election_time: int
    time_budget: int
    leader: int
    budget_applies: bool = True

    @property
    def within_budget(self) -> bool:
        return (not self.budget_applies) or self.election_time <= self.time_budget


def run_election_milestone(
    g: PortGraph, milestone: int, c: int = 2, phi: Optional[int] = None
) -> MilestoneRunRecord:
    """Full Theorem 4.1 pipeline for one milestone: oracle advice ->
    simulate Election_i -> verify election -> check the time budget."""
    if phi is None:
        phi = election_index(g)
    diameter = g.diameter()
    advice = election_advice(phi, milestone)
    p = round_parameter(decode_uint(advice), milestone)
    budget = milestone_round_budget(diameter, phi, milestone, c)
    result = run_sync(
        g,
        make_election_algorithm(milestone),
        advice=advice,
        max_rounds=diameter + p + 2,
    )
    outcome = verify_election(g, result.outputs)
    # Theorem 4.1 part 3 manipulates log log phi, undefined at phi = 1; the
    # D + phi^c budget is an asymptotic statement that degenerates there
    # (our clamped P3 = 3 keeps correctness but can exceed D + 1).
    budget_applies = not (milestone == 3 and phi == 1)
    record = MilestoneRunRecord(
        milestone=milestone,
        n=g.n,
        phi=phi,
        diameter=diameter,
        advice_bits=len(advice),
        round_parameter=p,
        election_time=result.election_time,
        time_budget=budget,
        leader=outcome.leader,
        budget_applies=budget_applies,
    )
    if not record.within_budget:
        raise AlgorithmError(
            f"Election{milestone} exceeded its budget: time "
            f"{record.election_time} > {budget}"
        )
    return record
