"""Orbit-collapsed election: simulate once per orbit, replicate to members.

Nodes in the same orbit of the port-automorphism group are
*indistinguishable* to every deterministic anonymous algorithm run with
identical advice: a port-preserving automorphism maps a node's entire
local history (degree, advice, per-port message sequence) onto its
image's, so same-orbit nodes hold equal states, compose equal outboxes
and commit equal outputs in every round.  :class:`OrbitEngine` exploits
this: it instantiates one algorithm per orbit *representative*, routes
messages between representatives (the message arriving at ``v`` through
port ``p`` is whatever the representative of ``v``'s neighbor sent on
the remote port), and replicates each representative's outputs, output
round and message counts to all orbit members — producing a
:class:`~repro.sim.local_model.RunResult` equal, field for field, to the
per-node :class:`~repro.sim.local_model.SyncEngine` run.  The per-node
engine remains the executable spec: the conformance oracle
(:mod:`repro.conformance.oracle`) cross-checks collapsed against full on
every sweep entry, and ``tests/test_orbit_elect.py`` does so
exhaustively on all small graphs.

Two valid collapse partitions, exact and fast:

:func:`node_orbits`
    The true automorphism orbits, decided exactly by
    :func:`repro.graphs.canonical.rooted_certificate` (equal rooted
    certificates iff an automorphism maps one root to the other).  Same
    orbit implies equal views at every depth, so orbits always *refine*
    the stable view partition — the certificate split only needs to run
    inside non-singleton refinement classes.  On feasible graphs the
    stable partition is discrete, so every orbit is a free singleton
    (Yamashita–Kameda: electable means all views distinct means rigid);
    the worst case is a vertex-transitive graph, where every node's
    certificate is computed — O(n * m), the price of full symmetry.

:func:`behavior_classes`
    The stable view-refinement partition itself
    (:func:`repro.views.refinement.stable_partition`), O(m * depth) with
    no certificates.  A node's state after r rounds of a deterministic
    uniform-advice algorithm is a function of its depth-r view, so nodes
    with equal views at *every* depth — same stable class — behave
    identically forever: the class partition is a coarser (never finer)
    valid collapse than the orbit partition, and the one the fast paths
    (service, bench) use.  The conformance rule runs the engine under
    *both* partitions and demands equality with the full run.

The collapse pays off exactly where election itself cannot run: on
graphs with nontrivial symmetry (vertex-transitive families, lifts) no
advice enables election, so the collapsed *election* path degenerates to
per-node.  What does run everywhere is the uniform-advice COM workload —
:class:`ViewProbeAlgorithm`, each node acquiring its depth-T view — and
there the collapsed engine does O(orbits/n) of the per-node work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.errors import AlgorithmError, SimulationError
from repro.graphs.canonical import rooted_certificate
from repro.graphs.port_graph import PortGraph
from repro.obs import core as obs
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import (
    NodeAlgorithm,
    NodeContext,
    RunResult,
    _check_message,
)
from repro.views.refinement import StablePartition, stable_partition


@dataclass(frozen=True)
class OrbitPartition:
    """A behavior-uniform partition of a graph's nodes.

    Attributes
    ----------
    orbit_of:
        ``orbit_of[v]`` is the index of node ``v``'s block; blocks are
        numbered by first occurrence in node order (``orbit_of[0] == 0``).
    orbits:
        ``orbits[i]`` is block ``i``'s members in increasing node order,
        so ``orbits[i][0]`` is the block's representative.
    """

    orbit_of: Tuple[int, ...]
    orbits: Tuple[Tuple[int, ...], ...]

    @property
    def representatives(self) -> Tuple[int, ...]:
        return tuple(members[0] for members in self.orbits)

    @property
    def num_orbits(self) -> int:
        return len(self.orbits)

    @property
    def max_orbit_size(self) -> int:
        return max(len(members) for members in self.orbits)

    @property
    def discrete(self) -> bool:
        """True iff every node is alone in its block."""
        return len(self.orbits) == len(self.orbit_of)

    def same_orbit(self, a: int, b: int) -> bool:
        return self.orbit_of[a] == self.orbit_of[b]


def _group_by_key(n: int, key_of: Callable[[int], Any]) -> OrbitPartition:
    """Blocks of equal keys, first-occurrence numbered."""
    index: Dict[Any, int] = {}
    members: List[List[int]] = []
    orbit_of: List[int] = []
    for v in range(n):
        key = key_of(v)
        i = index.get(key)
        if i is None:
            i = index[key] = len(members)
            members.append([])
        members[i].append(v)
        orbit_of.append(i)
    return OrbitPartition(
        orbit_of=tuple(orbit_of),
        orbits=tuple(tuple(block) for block in members),
    )


def node_orbits(
    g: PortGraph, stable: Optional[StablePartition] = None
) -> OrbitPartition:
    """The exact node orbits of ``g``'s port-automorphism group.

    Same orbit implies equal views at every depth, so the orbit
    partition refines the stable refinement partition: singleton
    refinement classes are singleton orbits for free, and only the
    members of non-singleton classes need the
    :func:`~repro.graphs.canonical.rooted_certificate` split (exact in
    both directions — equal certificates iff an automorphism maps one
    root to the other)."""
    if stable is None:
        stable = stable_partition(g)
    sig = stable.signature
    class_size: Dict[int, int] = {}
    for c in sig:
        class_size[c] = class_size.get(c, 0) + 1

    def key_of(v: int):
        c = sig[v]
        if class_size[c] == 1:
            # a singleton class is a singleton orbit; its node id is a
            # key no other node can share
            return v
        # certificates are globally exact, but prefixing the class keeps
        # the key's meaning local: orbits never cross classes
        return (c, rooted_certificate(g, v))

    return _group_by_key(g.n, key_of)


def behavior_classes(
    g: PortGraph, stable: Optional[StablePartition] = None
) -> OrbitPartition:
    """The stable view-refinement partition as an :class:`OrbitPartition`
    — the coarsest collapse valid for deterministic uniform-advice
    algorithms (equal views at every depth means equal behavior), and
    O(m * depth) with no certificate work.  Coarser than (or equal to)
    :func:`node_orbits`; never finer."""
    if stable is None:
        stable = stable_partition(g)
    sig = stable.signature
    # the dense signature is already first-occurrence numbered: reuse it
    members: List[List[int]] = [[] for _ in range(stable.num_classes)]
    for v, c in enumerate(sig):
        members[c].append(v)
    return OrbitPartition(
        orbit_of=tuple(sig),
        orbits=tuple(tuple(block) for block in members),
    )


class OrbitEngine:
    """Synchronous executor that simulates one node per orbit.

    Mirrors :class:`~repro.sim.local_model.SyncEngine` exactly — same
    round semantics, same error messages, same message accounting — but
    instantiates algorithms only for the representatives of ``orbits``
    (default: :func:`behavior_classes`) and replicates their results to
    all members.  Valid only for the collapse's hypotheses: identical
    advice at every node (``advice_map`` is refused) and no per-node
    tracer.
    """

    def __init__(
        self,
        graph: PortGraph,
        algorithm_factory: Callable[[], NodeAlgorithm],
        advice: Optional[Bits] = None,
        max_rounds: int = 10_000,
        paranoid: bool = False,
        orbits: Optional[OrbitPartition] = None,
        advice_map: Optional[Dict[int, Bits]] = None,
        tracer: Optional[Any] = None,
    ):
        if advice_map is not None:
            raise SimulationError(
                "orbit collapse requires identical advice at every node; "
                "per-node advice_map distinguishes orbit members"
            )
        if tracer is not None:
            raise SimulationError(
                "orbit collapse cannot drive a per-node tracer; use the "
                "per-node SyncEngine for traced runs"
            )
        self._g = graph
        self._factory = algorithm_factory
        self._advice = advice
        self._max_rounds = max_rounds
        self._paranoid = paranoid
        self._orbits = orbits

    def run(self) -> RunResult:
        g = self._g
        from repro.graphs.csr import csr_of

        csr = csr_of(g)
        n = csr.n
        degrees = csr.degrees
        nbrs = csr.neighbor_tuples
        rports = csr.remote_port_tuples
        orbits = self._orbits if self._orbits is not None else behavior_classes(g)
        orbit_of = orbits.orbit_of
        reps = orbits.representatives
        sizes = [len(members) for members in orbits.orbits]
        k = len(reps)

        algorithms = [self._factory() for _ in range(k)]
        contexts = [NodeContext(degrees[r], self._advice) for r in reps]
        for i in range(k):
            algorithms[i].setup(contexts[i])
        undecided = sum(
            sizes[i] for i in range(k) if contexts[i]._output_round is None
        )

        per_round_messages: List[int] = []
        total_messages = 0
        rounds = 0
        inboxes: List[List[Optional[Any]]] = [
            [None] * degrees[r] for r in reps
        ]
        while undecided:
            if rounds >= self._max_rounds:
                stuck = [
                    v
                    for v in range(n)
                    if contexts[orbit_of[v]]._output_round is None
                ]
                raise SimulationError(
                    f"simulation exceeded max_rounds={self._max_rounds}; "
                    f"{len(stuck)} nodes never output (first few: {stuck[:5]})"
                )
            rounds += 1
            # phase 1: every representative composes; each message counts
            # once per orbit member (the members send identical copies)
            outboxes: List[Dict[int, Any]] = []
            round_messages = 0
            for i in range(k):
                ctx = contexts[i]
                was_undecided = ctx._output_round is None
                out = algorithms[i].compose(ctx) or {}
                if was_undecided and ctx._output_round is not None:
                    undecided -= sizes[i]
                if out:
                    dv = degrees[reps[i]]
                    for port, msg in out.items():
                        if not (0 <= port < dv):
                            raise AlgorithmError(
                                f"node sent on port {port} but has degree {dv}"
                            )
                        if self._paranoid:
                            _check_message(msg)
                    round_messages += len(out) * sizes[i]
                outboxes.append(out)
            # phase 2: gather delivery — the message a representative v
            # receives through port p is what v's real neighbor sent on
            # the remote port, and the neighbor behaves exactly like its
            # own representative.  Every slot is written (None when the
            # sending orbit skipped the port), so no reset pass is needed.
            for i in range(k):
                v = reps[i]
                inbox = inboxes[i]
                nv = nbrs[v]
                qv = rports[v]
                for p in range(degrees[v]):
                    inbox[p] = outboxes[orbit_of[nv[p]]].get(qv[p])
            # phase 3: every representative processes
            for i in range(k):
                ctx = contexts[i]
                ctx._round = rounds
                was_undecided = ctx._output_round is None
                algorithms[i].deliver(ctx, inboxes[i])
                if was_undecided and ctx._output_round is not None:
                    undecided -= sizes[i]
            total_messages += round_messages
            per_round_messages.append(round_messages)

        return RunResult(
            outputs={v: contexts[orbit_of[v]].output_value for v in range(n)},
            output_round={
                v: contexts[orbit_of[v]]._output_round for v in range(n)
            },
            rounds=rounds,
            total_messages=total_messages,
            per_round_messages=per_round_messages,
        )


def run_orbit(
    graph: PortGraph,
    algorithm_factory: Callable[[], NodeAlgorithm],
    advice: Optional[Bits] = None,
    max_rounds: int = 10_000,
    paranoid: bool = False,
    orbits: Optional[OrbitPartition] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`OrbitEngine`."""
    return OrbitEngine(
        graph,
        algorithm_factory,
        advice,
        max_rounds=max_rounds,
        paranoid=paranoid,
        orbits=orbits,
    ).run()


# ----------------------------------------------------------------------
# the uniform-advice probe workload
# ----------------------------------------------------------------------
class ViewProbeAlgorithm:
    """COM for a fixed number of rounds; the output is the node's
    interned depth-``depth`` view.

    This is the advice-free core every election algorithm starts with
    (Algorithm 1), and — unlike election itself — it runs on *any*
    graph, which makes it the executable spec the collapsed-vs-full
    conformance rule and the ``elect-orbit`` bench exercise on the
    symmetric families where orbits are large."""

    def __init__(self, depth: int):
        if depth < 0:
            raise AlgorithmError(f"probe depth must be >= 0, got {depth}")
        self._depth = depth
        self._acc: Optional[ViewAccumulator] = None

    def setup(self, ctx: NodeContext) -> None:
        self._acc = ViewAccumulator(ctx.degree)
        # a degree-0 node (n = 1) never receives, so its view never
        # deepens; its depth-0 view is its final answer at any depth
        if self._depth == 0 or ctx.degree == 0:
            ctx.output(self._acc.view)

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        if ctx.has_output:
            return
        self._acc.absorb(inbox)
        if self._acc.depth == self._depth:
            ctx.output(self._acc.view)


def view_probe_factory(depth: int) -> Callable[[], ViewProbeAlgorithm]:
    """Factory for :class:`ViewProbeAlgorithm` at a fixed depth."""
    return lambda: ViewProbeAlgorithm(depth)


def run_view_probe(
    g: PortGraph,
    depth: int,
    orbits: Optional[OrbitPartition] = None,
    collapsed: bool = True,
) -> RunResult:
    """Run the depth-``depth`` probe, collapsed (default) or per-node."""
    factory = view_probe_factory(depth)
    max_rounds = depth + 2
    if collapsed:
        return run_orbit(g, factory, max_rounds=max_rounds, orbits=orbits)
    from repro.sim.local_model import run_sync

    return run_sync(g, factory, max_rounds=max_rounds)


# ----------------------------------------------------------------------
# the collapsed Theorem 3.1 pipeline
# ----------------------------------------------------------------------
def run_elect_orbit(
    g: PortGraph,
    bundle: Optional["AdviceBundle"] = None,
    paranoid: bool = False,
    orbits: Optional[OrbitPartition] = None,
) -> "ElectRunRecord":
    """:func:`repro.core.elect.run_elect` through the collapsed engine:
    ComputeAdvice -> simulate Elect once per orbit -> verify.  Performs
    the same per-run assertions and returns the same record type — the
    service's ``elect`` fast path computes through this and stays
    byte-identical to the per-node record.  (On feasible graphs — the
    only graphs election admits — every orbit is a singleton, so the
    collapse is the identity; the value here is one engine contract for
    both regimes, proven equal by the conformance rule.)"""
    from repro.core.advice import compute_advice
    from repro.core.elect import ElectAlgorithm, ElectRunRecord
    from repro.core.verify import verify_election
    from repro.errors import AdviceError

    with obs.span("elect.orbit", nodes=g.n) as sp:
        if bundle is None:
            with obs.span("elect.advice"):
                bundle = compute_advice(g)
        with obs.span("elect.simulate") as sim_sp:
            result = run_orbit(
                g,
                ElectAlgorithm,
                advice=bundle.bits,
                max_rounds=bundle.phi + 2,
                paranoid=paranoid,
                orbits=orbits,
            )
            if sim_sp.recording:
                sim_sp.set("rounds", result.rounds)
                sim_sp.set("total_messages", result.total_messages)
                sim_sp.set(
                    "per_round_messages", list(result.per_round_messages)
                )
                if orbits is not None:
                    sim_sp.set("num_orbits", orbits.num_orbits)
        with obs.span("elect.verify"):
            outcome = verify_election(g, result.outputs)
        if sp.recording:
            sp.set("phi", bundle.phi)
            sp.set("advice_bits", bundle.size_bits)
        if outcome.leader != bundle.root:
            raise AdviceError(
                f"elected node {outcome.leader} differs from the oracle's "
                f"root {bundle.root}"
            )
        if result.election_time != bundle.phi:
            raise AdviceError(
                f"election time {result.election_time} != phi = {bundle.phi}"
            )
        return ElectRunRecord.from_run(g, bundle, result, outcome)
