"""The remark after Theorem 4.1: election in time exactly D + phi with
O(log D + log phi) bits of advice.

The oracle supplies the pair (D, phi).  After D + phi rounds each node u
holds B^{D+phi}(u); since every graph node appears within depth D of u's
view, u can read off the depth-phi views of *all* nodes (as truncations of
view-tree nodes at depth <= D), pick the canonically smallest one — unique
because the depth is phi — and output a shortest path to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.core.generic import _lex_smallest_path_to, _level_sets
from repro.core.verify import verify_election
from repro.errors import AdviceError, AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeContext, run_sync
from repro.views.election_index import election_index
from repro.views.order import view_min
from repro.views.view import truncate_view


def known_d_phi_advice(diameter: int, phi: int) -> Bits:
    """Advice Concat(bin(D), bin(phi)) of size O(log D + log phi)."""
    if diameter < 1 or phi < 1:
        raise AdviceError("D and phi must be >= 1")
    return concat_bits([encode_uint(diameter), encode_uint(phi)])


class KnownDPhiAlgorithm:
    """Per-node algorithm for the D + phi remark."""

    def __init__(self):
        self._acc: Optional[ViewAccumulator] = None
        self._d: Optional[int] = None
        self._phi: Optional[int] = None

    def setup(self, ctx: NodeContext) -> None:
        if ctx.advice is None:
            raise AdviceError("KnownDPhi requires the (D, phi) advice")
        parts = decode_concat(ctx.advice)
        if len(parts) != 2:
            raise AdviceError("KnownDPhi advice must be Concat(bin(D), bin(phi))")
        self._d = decode_uint(parts[0])
        self._phi = decode_uint(parts[1])
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if ctx.has_output or self._acc.depth < self._d + self._phi:
            return
        root = self._acc.view
        levels = _level_sets(root, self._d)
        all_phi_views = {
            truncate_view(w, self._phi)
            for level in levels
            for w in level
        }
        target = view_min(all_phi_views)
        path = _lex_smallest_path_to(root, target, self._phi, self._d)
        ctx.output(path)


@dataclass
class KnownDPhiRecord:
    n: int
    phi: int
    diameter: int
    advice_bits: int
    election_time: int
    leader: int


def run_known_d_phi(g: PortGraph, phi: Optional[int] = None) -> KnownDPhiRecord:
    """Pipeline for the remark: advice (D, phi) -> simulate -> verify ->
    assert time exactly D + phi."""
    if phi is None:
        phi = election_index(g)
    diameter = g.diameter()
    advice = known_d_phi_advice(diameter, phi)
    result = run_sync(
        g, KnownDPhiAlgorithm, advice=advice, max_rounds=diameter + phi + 1
    )
    outcome = verify_election(g, result.outputs)
    if result.election_time != diameter + phi:
        raise AlgorithmError(
            f"KnownDPhi took {result.election_time} rounds, expected exactly "
            f"D + phi = {diameter + phi}"
        )
    return KnownDPhiRecord(
        n=g.n,
        phi=phi,
        diameter=diameter,
        advice_bits=len(advice),
        election_time=result.election_time,
        leader=outcome.leader,
    )
