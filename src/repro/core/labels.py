"""LocalLabel (Algorithm 2) and RetrieveLabel (Algorithm 3).

These two procedures are shared verbatim between the oracle (which uses
them while *constructing* the advice) and every node (which uses them,
after decoding the advice, to turn its augmented truncated view B^phi(u)
into a unique label in {1..n}).  The symmetry is the crux of Theorem 3.1:
both sides must compute identical labels from identical inputs, which here
is guaranteed by literally executing the same code on the same interned
view objects and decoded tries.

:class:`LabelingContext` bundles E1 (the depth-1 trie), the E2 layers
({depth: {label: trie}}), and the memo caches.  Labels are memoised per
view: the label of a depth-d view depends only on the E2 layers for depths
<= d, which are final by the time they are queried (ComputeAdvice appends
layers in increasing depth), so the cache remains valid while the oracle
is still extending E2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.coding.tries import Trie
from repro.errors import AdviceError
from repro.views.encoding import encode_b1
from repro.views.view import View, truncate_view


@dataclass
class LabelingContext:
    """E1 + E2 plus memoisation, shared by oracle and node code paths."""

    e1: Optional[Trie] = None
    e2_layers: Dict[int, Dict[int, Trie]] = field(default_factory=dict)
    _label_cache: Dict[View, int] = field(default_factory=dict)
    _leaves_cache: Dict[int, int] = field(default_factory=dict)

    def add_layer(self, depth: int, layer: Dict[int, Trie]) -> None:
        """Install the E2 layer for ``depth`` (oracle side, append-only)."""
        if depth in self.e2_layers:
            raise AdviceError(f"E2 layer for depth {depth} installed twice")
        self.e2_layers[depth] = layer

    def num_leaves(self, trie: Trie) -> int:
        """Cached leaf count of a trie."""
        cached = self._leaves_cache.get(id(trie))
        if cached is None:
            cached = trie.num_leaves()
            self._leaves_cache[id(trie)] = cached
        return cached


def local_label(
    b: View, x: Sequence[int], trie: Trie, ctx: LabelingContext
) -> int:
    """Algorithm 2.

    ``b`` is an augmented truncated view; ``x`` the (possibly empty) list of
    labels previously assigned to the children of the view's root; ``trie``
    discriminates the candidate set.  Returns the 1-based index of the leaf
    the queries route ``b`` to.
    """
    node = trie
    offset = 0
    while not node.is_leaf:
        qx, qy = node.query
        left = False
        if len(x) == 0:
            bits = encode_b1(b)
            if qx == 0 and len(bits) < qy:
                left = True
            if qx == 1 and bits.bit(qy) == 0:
                left = True
        else:
            if qx >= len(x):
                raise AdviceError(
                    f"trie query inspects child {qx} but the view root has "
                    f"only {len(x)} children"
                )
            if x[qx] != qy:
                left = True
        if left:
            node = node.left
        else:
            offset += ctx.num_leaves(node.left)
            node = node.right
    return offset + 1


def retrieve_label(b: View, ctx: LabelingContext) -> int:
    """Algorithm 3: the unique temporary label of view ``b``.

    Distinct views at the same depth d receive distinct labels in
    {1..|S_d|} (Claims 3.4 and 3.7), provided E1 and the E2 layers up to
    depth d discriminate the graph's views — which ComputeAdvice arranges.
    """
    cached = ctx._label_cache.get(b)
    if cached is not None:
        return cached

    d = b.depth
    if d < 1:
        raise AdviceError(f"retrieve_label requires depth >= 1, got {d}")
    if d == 1:
        if ctx.e1 is None:
            raise AdviceError("labeling context has no depth-1 trie E1")
        result = local_label(b, (), ctx.e1, ctx)
    else:
        x = tuple(retrieve_label(child, ctx) for _, child in b.children)
        b_prime = truncate_view(b, d - 1)
        label = retrieve_label(b_prime, ctx)
        layer = ctx.e2_layers.get(d, {})
        total = 0
        for i in range(1, label + 1):
            trie = layer.get(i)
            if trie is not None:
                if i < label:
                    total += ctx.num_leaves(trie)
                else:
                    total += local_label(b, x, trie, ctx)
            else:
                total += 1
        result = total

    ctx._label_cache[b] = result
    return result
