"""Algorithm 6 (Elect): leader election in minimum time phi.

Node side of Theorem 3.1.  Each node decodes (phi, E1, E2, A2) from the
advice, runs COM for phi rounds to acquire B^phi(u), computes its unique
label x = RetrieveLabel(B^phi(u), E1, E2), locates itself in the decoded
BFS tree through x, and outputs the port sequence of the tree path from x
to the root (label 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.coding.bitstring import Bits
from repro.core.advice import (
    AdviceBundle,
    compute_advice,
    decode_advice,
    labeling_context_from_advice,
)
from repro.core.labels import retrieve_label
from repro.core.verify import ElectionOutcome, verify_election
from repro.errors import AdviceError
from repro.graphs.port_graph import PortGraph
from repro.obs import core as obs
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeAlgorithm, NodeContext, RunResult, run_sync


class ElectAlgorithm:
    """Per-node algorithm; requires ``ctx.advice`` from ComputeAdvice."""

    def __init__(self):
        self._acc: Optional[ViewAccumulator] = None
        self._phi: Optional[int] = None
        self._labeling = None
        self._tree = None

    def setup(self, ctx: NodeContext) -> None:
        if ctx.advice is None:
            raise AdviceError("Elect requires the oracle's advice string")
        phi, e1, e2, tree = decode_advice(ctx.advice)
        self._phi = phi
        self._labeling = labeling_context_from_advice(e1, e2)
        self._tree = tree
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx: NodeContext):
        # COM(i): keep exchanging views every round (harmlessly also after
        # the output is committed; see the engine's round semantics).
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if self._acc.depth == self._phi and not ctx.has_output:
            label = retrieve_label(self._acc.view, self._labeling)
            pairs = self._tree.path_to_root_ports(label)
            flat: Tuple[int, ...] = tuple(x for pair in pairs for x in pair)
            ctx.output(flat)


@dataclass
class ElectRunRecord:
    """End-to-end record of one Elect run (oracle + simulation + verify)."""

    n: int
    phi: int
    advice_bits: int
    election_time: int
    leader: int
    total_messages: int

    @classmethod
    def from_run(
        cls, g: PortGraph, bundle: AdviceBundle, result: RunResult, outcome: ElectionOutcome
    ) -> "ElectRunRecord":
        return cls(
            n=g.n,
            phi=bundle.phi,
            advice_bits=bundle.size_bits,
            election_time=result.election_time,
            leader=outcome.leader,
            total_messages=result.total_messages,
        )


def run_elect(
    g: PortGraph, bundle: Optional[AdviceBundle] = None, paranoid: bool = False
) -> ElectRunRecord:
    """Full Theorem 3.1 pipeline: ComputeAdvice -> simulate Elect -> verify.

    Asserts the two properties of the theorem that are checkable per run:
    the leader is the oracle's label-1 node and the election time is
    exactly phi.
    """
    with obs.span("elect.run", nodes=g.n) as sp:
        if bundle is None:
            with obs.span("elect.advice"):
                bundle = compute_advice(g)
        # run_sync opens its own child span (sim.run) carrying the
        # per-round message/DAG accounting
        result = run_sync(
            g,
            ElectAlgorithm,
            advice=bundle.bits,
            max_rounds=bundle.phi + 2,
            paranoid=paranoid,
        )
        with obs.span("elect.verify"):
            outcome = verify_election(g, result.outputs)
        if sp.recording:
            sp.set("phi", bundle.phi)
            sp.set("advice_bits", bundle.size_bits)
        if outcome.leader != bundle.root:
            raise AdviceError(
                f"elected node {outcome.leader} differs from the oracle's "
                f"root {bundle.root}"
            )
        if result.election_time != bundle.phi:
            raise AdviceError(
                f"election time {result.election_time} != phi = {bundle.phi}"
            )
        return ElectRunRecord.from_run(g, bundle, result, outcome)
