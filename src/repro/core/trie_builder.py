"""BuildTrie (Algorithm 4).

Given a set S of distinct augmented truncated views at a common depth l,
produce a trie whose queries route each view of S to a distinct leaf.

* Depth 1 (the paper's ``E1 = emptyset`` case): queries inspect the binary
  encoding ``bin(B^1)`` — first split by length, then by the first
  differing bit position.
* Depth >= 2: all views of S share the same depth-(l-1) truncation (this
  is the invariant under which ComputeAdvice calls BuildTrie, preserved by
  both recursive branches), so any two views differ in some child's
  depth-(l-1) view.  The *discriminatory index* i and *discriminatory
  subview* Bdisc come from the two canonically-smallest views of S; the
  query is ``(i, RetrieveLabel(Bdisc))`` — crucially O(log n) bits, which
  is what keeps the whole advice at O(n log n) (the naive depth-phi
  queries would cost a factor phi more; see Section 3's discussion).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.coding.tries import Trie, trie_leaf, trie_node
from repro.core.labels import LabelingContext, retrieve_label
from repro.errors import AdviceError
from repro.views.encoding import encode_b1
from repro.views.order import view_compare, view_sort_key
from repro.views.view import View


def build_trie(views: Sequence[View], ctx: LabelingContext) -> Trie:
    """Build the discrimination trie for the distinct views in ``views``.

    The views must all have the same depth and be pairwise distinct; the
    resulting trie has exactly ``len(views)`` leaves (Claims 3.1 / 3.6).
    """
    views = list(views)
    if not views:
        raise AdviceError("build_trie requires a non-empty view set")
    depth = views[0].depth
    for v in views:
        if v.depth != depth:
            raise AdviceError("build_trie requires views of a single depth")
    if len(set(views)) != len(views):
        raise AdviceError("build_trie requires pairwise distinct views")
    if depth == 1:
        return _build_depth1(views)
    return _build_deep(views, ctx)


def _build_depth1(views: List[View]) -> Trie:
    if len(views) == 1:
        return trie_leaf()
    encodings = {v: encode_b1(v) for v in views}
    lengths = {len(bits) for bits in encodings.values()}
    if len(lengths) > 1:
        longest = max(lengths)
        left_set = [v for v in views if len(encodings[v]) < longest]
        query = (0, longest)
    else:
        (common_len,) = lengths
        split_pos = None
        for j in range(1, common_len + 1):
            bits_at_j = {encodings[v].bit(j) for v in views}
            if len(bits_at_j) > 1:
                split_pos = j
                break
        if split_pos is None:
            raise AdviceError(
                "distinct depth-1 views share one encoding: codec is broken"
            )
        left_set = [v for v in views if encodings[v].bit(split_pos) == 0]
        query = (1, split_pos)
    right_set = [v for v in views if v not in set(left_set)]
    if not left_set or not right_set:
        raise AdviceError("depth-1 trie split produced an empty side")
    return trie_node(query, _build_depth1(left_set), _build_depth1(right_set))


def _build_deep(views: List[View], ctx: LabelingContext) -> Trie:
    if len(views) == 1:
        return trie_leaf()
    ordered = sorted(views, key=view_sort_key)
    u, v = ordered[0], ordered[1]
    # discriminatory index: smallest port whose child views differ between
    # the two canonically-smallest views of S
    index = None
    for i in range(u.degree):
        if u.child(i) is not v.child(i):
            index = i
            break
    if index is None:
        raise AdviceError(
            "two distinct views with identical children: interning is broken"
        )
    ca, cb = u.child(index), v.child(index)
    b_disc = ca if view_compare(ca, cb) < 0 else cb
    left_set = [b for b in views if b.child(index) is not b_disc]
    right_set = [b for b in views if b.child(index) is b_disc]
    if not left_set or not right_set:
        raise AdviceError("deep trie split produced an empty side")
    query = (index, retrieve_label(b_disc, ctx))
    return trie_node(query, _build_deep(left_set, ctx), _build_deep(right_set, ctx))
