"""Post-election protocols: using the elected leader.

The paper's motivation (token rings, coordination) is about what happens
*after* election.  The election outputs themselves — each node's port
path to the leader — are exactly the local routing state those protocols
need: following the first hop of its own path strictly decreases a node's
distance to the leader (paths are simple/shortest in every algorithm
here), so the first hops form a parent forest oriented at the leader.

Two classic protocols, composed directly on top of any verified election:

* :class:`FloodBroadcast` — the leader floods a payload; time =
  eccentricity of the leader;
* :class:`ConvergecastSum` — children announce themselves to their
  parents, then subtree sums flow leaderward; the leader learns the
  global sum in (tree depth + 1) rounds.

Both take *per-node local inputs* (the node's own election output, its
own payload/value) — legitimately local state from the previous phase,
not advice.  Use :func:`sequential_factory` to hand the engine one
pre-built instance per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.local_model import NodeAlgorithm, NodeContext, run_sync


def sequential_factory(instances: Iterable[NodeAlgorithm]) -> Callable[[], NodeAlgorithm]:
    """Adapt a per-node instance list to the engine's factory protocol
    (the engine instantiates nodes in node order)."""
    iterator = iter(list(instances))

    def make() -> NodeAlgorithm:
        return next(iterator)

    return make


def _parent_port(election_output: Sequence[int]) -> Optional[int]:
    """The first-hop port toward the leader; None for the leader itself."""
    if len(election_output) == 0:
        return None
    return election_output[0]


# ----------------------------------------------------------------------
class FloodBroadcast:
    """Leader floods ``payload``; everyone outputs it on first receipt."""

    def __init__(self, election_output: Sequence[int], payload: Any = None):
        self._is_leader = len(election_output) == 0
        self._payload = payload if self._is_leader else None
        self._got: Any = None

    def setup(self, ctx: NodeContext) -> None:
        if self._is_leader:
            self._got = self._payload
            ctx.output(self._payload)

    def compose(self, ctx: NodeContext) -> Optional[Dict[int, Any]]:
        if self._got is None:
            return None
        return {p: ("bcast", self._got) for p in range(ctx.degree)}

    def deliver(self, ctx: NodeContext, inbox) -> None:
        if self._got is not None:
            return
        for msg in inbox:
            if msg is not None and msg[0] == "bcast":
                self._got = msg[1]
                ctx.output(self._got)
                return


@dataclass
class BroadcastResult:
    payload: Any
    rounds: int


def run_broadcast(
    g: PortGraph, election_outputs: Dict[int, Sequence[int]], payload: Any
) -> BroadcastResult:
    """Flood ``payload`` from the elected leader; verify total delivery."""
    instances = [
        FloodBroadcast(election_outputs[v], payload) for v in g.nodes()
    ]
    result = run_sync(g, sequential_factory(instances), max_rounds=g.n + 1)
    values = set(result.outputs.values())
    if values != {payload}:
        raise AlgorithmError(f"broadcast delivered {values}, expected {{payload}}")
    return BroadcastResult(payload=payload, rounds=result.election_time)


# ----------------------------------------------------------------------
class ConvergecastSum:
    """Sum all nodes' values at the leader over the election forest.

    Round 1: every non-leader announces itself on its parent port.
    After round 1 each node knows its children ports; once values from
    all children have arrived, it sends (its value + subtree values) to
    its parent and outputs its subtree sum.  The leader outputs the
    global sum.
    """

    def __init__(self, election_output: Sequence[int], value: float):
        self._parent_port = _parent_port(election_output)
        self._value = value
        self._children: Optional[List[int]] = None  # ports
        self._child_values: Dict[int, float] = {}
        self._sent = False

    def setup(self, ctx: NodeContext) -> None:
        pass

    def compose(self, ctx: NodeContext) -> Optional[Dict[int, Any]]:
        if self._children is None:
            # round 1: announce to the parent (leader announces nothing)
            if self._parent_port is None:
                return None
            return {self._parent_port: ("child",)}
        if (
            not self._sent
            and self._parent_port is not None
            and len(self._child_values) == len(self._children)
        ):
            self._sent = True
            total = self._value + sum(self._child_values.values())
            return {self._parent_port: ("sum", total)}
        return None

    def deliver(self, ctx: NodeContext, inbox) -> None:
        if self._children is None:
            self._children = [
                p for p, msg in enumerate(inbox)
                if msg is not None and msg[0] == "child"
            ]
        else:
            for p, msg in enumerate(inbox):
                if msg is not None and msg[0] == "sum":
                    if p not in self._children:
                        raise AlgorithmError("sum from a non-child port")
                    self._child_values[p] = msg[1]
        if (
            not ctx.has_output
            and self._children is not None
            and len(self._child_values) == len(self._children)
        ):
            subtree = self._value + sum(self._child_values.values())
            if self._parent_port is None:
                ctx.output(subtree)  # the leader: global sum
            elif self._sent:
                ctx.output(subtree)

    # note: a non-leaf non-leader outputs right after sending; a leaf sends
    # and outputs in the round after the announcements


@dataclass
class ConvergecastResult:
    leader_total: float
    rounds: int
    subtree_sums: Dict[int, float]


def run_convergecast(
    g: PortGraph,
    election_outputs: Dict[int, Sequence[int]],
    values: Dict[int, float],
) -> ConvergecastResult:
    """Aggregate ``values`` at the elected leader; verify the total."""
    instances = [
        ConvergecastSum(election_outputs[v], values[v]) for v in g.nodes()
    ]
    result = run_sync(g, sequential_factory(instances), max_rounds=2 * g.n + 2)
    leader = next(
        v for v in g.nodes() if len(election_outputs[v]) == 0
    )
    total = result.outputs[leader]
    expected = sum(values.values())
    if abs(total - expected) > 1e-9:
        raise AlgorithmError(
            f"convergecast total {total} != sum of values {expected}"
        )
    return ConvergecastResult(
        leader_total=total,
        rounds=result.election_time,
        subtree_sums=dict(result.outputs),
    )
