"""The paper's primary contribution: leader election with advice.

Oracle side (knows the full graph):

* :func:`compute_advice` — Algorithm 5 (ComputeAdvice): the O(n log n)-bit
  advice enabling election in minimum time phi;
* :func:`election_advice` — the tiny advice strings A1..A4 of Theorem 4.1.

Node side (sees only degree + advice + messages):

* :class:`ElectAlgorithm` — Algorithm 6 (Elect), election in time phi;
* :class:`GenericAlgorithm` — Algorithm 7 (Generic(x)), election in time
  <= D + x + 1 for any x >= phi;
* :func:`make_election_algorithm` — Algorithm 8 (Election1..4);
* :class:`KnownDPhiAlgorithm` — the remark after Theorem 4.1 (time D+phi
  with O(log D + log phi) bits).

Shared: :func:`verify_election` checks the paper's correctness condition
(all outputs are simple paths converging on one node) on any run.
"""

from repro.core.labels import LabelingContext, local_label, retrieve_label
from repro.core.trie_builder import build_trie
from repro.core.advice import AdviceBundle, compute_advice, decode_advice
from repro.core.elect import ElectAlgorithm, run_elect
from repro.core.generic import GenericAlgorithm, run_generic
from repro.core.orbit_elect import (
    OrbitEngine,
    OrbitPartition,
    ViewProbeAlgorithm,
    behavior_classes,
    node_orbits,
    run_elect_orbit,
    run_orbit,
    run_view_probe,
    view_probe_factory,
)
from repro.core.elections import (
    MILESTONES,
    election_advice,
    make_election_algorithm,
    milestone_round_budget,
    run_election_milestone,
)
from repro.core.known_d_phi import KnownDPhiAlgorithm, run_known_d_phi
from repro.core.post_election import (
    FloodBroadcast,
    ConvergecastSum,
    run_broadcast,
    run_convergecast,
    sequential_factory,
)
from repro.core.verify import (
    ElectionOutcome,
    leaders_equivalent,
    outcomes_equivalent,
    verify_election,
)

__all__ = [
    "LabelingContext",
    "local_label",
    "retrieve_label",
    "build_trie",
    "AdviceBundle",
    "compute_advice",
    "decode_advice",
    "ElectAlgorithm",
    "run_elect",
    "GenericAlgorithm",
    "run_generic",
    "OrbitEngine",
    "OrbitPartition",
    "ViewProbeAlgorithm",
    "behavior_classes",
    "node_orbits",
    "run_elect_orbit",
    "run_orbit",
    "run_view_probe",
    "view_probe_factory",
    "MILESTONES",
    "election_advice",
    "make_election_algorithm",
    "milestone_round_budget",
    "run_election_milestone",
    "KnownDPhiAlgorithm",
    "run_known_d_phi",
    "FloodBroadcast",
    "ConvergecastSum",
    "run_broadcast",
    "run_convergecast",
    "sequential_factory",
    "ElectionOutcome",
    "verify_election",
    "leaders_equivalent",
    "outcomes_equivalent",
]
