"""Algorithm 7 (Generic(x)): leader election in time <= D + x + 1.

A node running Generic(x) exchanges views (COM) forever; from round x on,
after COM(r) it holds B^{r+1}(u) and inspects the depth-x views of the
nodes it can "see": X collects the depth-x views of view-tree nodes at
depth <= r - x, Y those at depth exactly r - x + 1.  When Y ⊆ X — no new
depth-x view appeared on the frontier — the node provably has seen *all*
depth-x views of the graph (Lemma 4.1), so it outputs the port sequence of
a shortest path towards the node whose depth-x view is canonically
smallest (unique because x >= phi), breaking ties lexicographically.

The view-tree is never expanded: interned views are a DAG, and the level
sets L_j (distinct views at tree-depth j) have at most n elements each, so
a round costs O((r - x) * n * max_degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.verify import ElectionOutcome, verify_election
from repro.errors import AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeContext, RunResult, run_sync
from repro.views.order import view_compare, view_min
from repro.views.view import View, truncate_view


def _level_sets(root: View, max_level: int) -> List[Set[View]]:
    """Distinct views at tree-depths 0..max_level of the view DAG."""
    levels: List[Set[View]] = [{root}]
    for _ in range(max_level):
        nxt: Set[View] = set()
        for w in levels[-1]:
            for _, child in w.children:
                nxt.add(child)
        levels.append(nxt)
    return levels


def _lex_smallest_path_to(
    root: View, target: View, x: int, max_level: int
) -> Tuple[int, ...]:
    """Port sequence (p1, q1, ..., pk, qk) of the lexicographically smallest
    among the shortest paths, in the view tree of ``root``, to a node whose
    depth-``x`` truncation is ``target``."""
    frontier: Dict[View, Tuple[int, ...]] = {root: ()}
    for level in range(max_level + 1):
        hits = [
            path
            for w, path in frontier.items()
            if w.depth >= x and truncate_view(w, x) is target
        ]
        if hits:
            return min(hits)
        nxt: Dict[View, Tuple[int, ...]] = {}
        for w, path in frontier.items():
            for p, (q, child) in enumerate(w.children):
                candidate = path + (p, q)
                best = nxt.get(child)
                if best is None or candidate < best:
                    nxt[child] = candidate
        frontier = nxt
    raise AlgorithmError(
        "target view not reachable in the known view tree (Generic invariant "
        "violated)"
    )


class GenericAlgorithm:
    """Per-node Generic(x).  ``x`` must satisfy x >= phi(G) for correctness;
    the value reaches the node either directly (constructor) or via the
    Election_i advice decoding (see :mod:`repro.core.elections`)."""

    def __init__(self, x: int):
        if x < 1:
            raise AlgorithmError(f"Generic requires x >= 1, got {x}")
        self._x = x
        self._acc: Optional[ViewAccumulator] = None

    def setup(self, ctx: NodeContext) -> None:
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if ctx.has_output:
            return
        x = self._x
        r = self._acc.depth - 1  # we just completed COM(r)
        if r < x:
            return
        root = self._acc.view  # B^{r+1}(u)
        levels = _level_sets(root, r - x + 1)
        seen: Set[View] = set()
        for j in range(0, r - x + 1):
            for w in levels[j]:
                seen.add(truncate_view(w, x))
        frontier_views = {truncate_view(w, x) for w in levels[r - x + 1]}
        if not frontier_views <= seen:
            return
        target = view_min(seen)
        path = _lex_smallest_path_to(root, target, x, r - x + 1)
        ctx.output(path)


@dataclass
class GenericRunRecord:
    """Record of one Generic(x) run."""

    n: int
    x: int
    diameter: int
    election_time: int
    leader: int
    total_messages: int


def run_generic(
    g: PortGraph, x: int, check_time_bound: bool = True
) -> GenericRunRecord:
    """Simulate Generic(x) on ``g``, verify the election, and (by default)
    assert Lemma 4.1's time bound D + x + 1."""
    diameter = g.diameter()
    result = run_sync(
        g,
        lambda: GenericAlgorithm(x),
        advice=None,
        max_rounds=diameter + x + 2,
    )
    outcome = verify_election(g, result.outputs)
    if check_time_bound and result.election_time > diameter + x + 1:
        raise AlgorithmError(
            f"Generic({x}) took {result.election_time} rounds, exceeding "
            f"D + x + 1 = {diameter + x + 1}"
        )
    return GenericRunRecord(
        n=g.n,
        x=x,
        diameter=diameter,
        election_time=result.election_time,
        leader=outcome.leader,
        total_messages=result.total_messages,
    )
