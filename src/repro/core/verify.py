"""Election-output verification.

The task specification (Section 1): every node v outputs a sequence
``P(v) = (p1, q1, ..., pk, qk)`` of port numbers; ``P*(v)`` is the path
from v whose i-th edge leaves through port ``p_i`` and arrives through
``q_i``.  Election is correct iff every ``P*(v)`` is a *simple* path in
the graph and all paths end at a common node — the leader.

This verifier is the ground truth for every test and benchmark: it never
trusts algorithm internals, only the outputs and the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ElectionFailure, GraphError
from repro.graphs.port_graph import PortGraph


@dataclass
class ElectionOutcome:
    """A verified election: the leader and each node's path to it."""

    leader: int
    paths: Dict[int, List[int]]  # node -> list of visited nodes (incl. both ends)

    def path_length(self, v: int) -> int:
        return len(self.paths[v]) - 1


def _as_port_pairs(output: Sequence[int]) -> List[Tuple[int, int]]:
    if len(output) % 2 != 0:
        raise ElectionFailure(
            f"output {tuple(output)} has odd length; must be (p1,q1,...,pk,qk)"
        )
    if any((not isinstance(x, int)) or x < 0 for x in output):
        raise ElectionFailure(
            f"output {tuple(output)} must consist of non-negative integers"
        )
    return [(output[i], output[i + 1]) for i in range(0, len(output), 2)]


def verify_election(g: PortGraph, outputs: Dict[int, Sequence[int]]) -> ElectionOutcome:
    """Verify outputs of all nodes; return the leader or raise
    :class:`ElectionFailure` with a precise diagnosis."""
    missing = [v for v in g.nodes() if v not in outputs]
    if missing:
        raise ElectionFailure(f"nodes {missing[:5]} produced no output")

    leader = None
    paths: Dict[int, List[int]] = {}
    for v in g.nodes():
        pairs = _as_port_pairs(outputs[v])
        try:
            visited = g.follow_port_path(v, pairs)
        except GraphError as exc:
            # GraphStructureError: a remote port mismatches; PortNumberingError:
            # the output names a port the node does not have.  Either way the
            # coded path does not exist in the graph — a verification failure,
            # never a crash.
            raise ElectionFailure(
                f"output of node {v} is not a path in the graph: {exc}"
            ) from exc
        if len(set(visited)) != len(visited):
            raise ElectionFailure(
                f"output of node {v} is not a simple path: visits {visited}"
            )
        end = visited[-1]
        if leader is None:
            leader = end
        elif end != leader:
            raise ElectionFailure(
                f"paths disagree: node {v} reaches {end} but an earlier node "
                f"reached {leader}"
            )
        paths[v] = visited
    assert leader is not None
    return ElectionOutcome(leader=leader, paths=paths)


def leaders_equivalent(g: PortGraph, leader_a: int, leader_b: int) -> bool:
    """Whether two elected leaders are the same node *up to port-graph
    automorphism* — the strongest equality an anonymous observer can ask
    for.  On feasible graphs the automorphism group is trivial, so this
    degenerates to equality; the general form is what the conformance
    oracle checks across execution models, so the check stays meaningful
    on every input.
    """
    if leader_a == leader_b:
        return True
    # An automorphism mapping a to b exists iff the rooted canonical
    # certificates of (g, a) and (g, b) coincide — individualizing the
    # root makes the port-deterministic relabeling discrete, so the O(m)
    # certificate comparison decides exactly what the anchored VF2 search
    # (:func:`repro.graphs.isomorphism.port_automorphism_maps`) decides;
    # unequal certificates short-circuit to False without any search.
    # Parity with VF2 is pinned by ``tests/test_graphs_canonical.py``.
    from repro.graphs.canonical import rooted_certificate

    return rooted_certificate(g, leader_a) == rooted_certificate(g, leader_b)


def outcomes_equivalent(
    g: PortGraph, a: ElectionOutcome, b: ElectionOutcome
) -> bool:
    """Whether two verified election outcomes agree up to port-graph
    automorphism (see :func:`leaders_equivalent`)."""
    return leaders_equivalent(g, a.leader, b.leader)
