"""ComputeAdvice (Algorithm 5) — the oracle — and the advice codec.

The advice is the single binary string

    Adv = Concat(bin(phi), A1, A2)
    A1  = Concat(bin(E1), bin(E2))
    A2  = bin(T)

where E1 is the depth-1 trie, E2 the nested list of per-depth trie layers,
and T the canonical BFS tree of G rooted at the node labeled 1, with every
node labeled by RetrieveLabel(B^phi(u)).  Theorem 3.1: |Adv| = O(n log n)
and Algorithm Elect using Adv elects in time exactly phi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.coding.nested import E2Type, decode_e2, e2_as_maps, encode_e2
from repro.coding.trees import LabeledRootedTree, decode_tree, encode_tree
from repro.coding.tries import Trie, decode_trie, encode_trie
from repro.core.labels import LabelingContext, retrieve_label
from repro.core.trie_builder import build_trie
from repro.errors import AdviceError
from repro.graphs.port_graph import PortGraph
from repro.views.election_index import election_index
from repro.views.order import sort_views
from repro.views.view import View, view_levels


@dataclass
class AdviceBundle:
    """Oracle-side record of everything ComputeAdvice built (for analysis
    and white-box tests; nodes only ever see ``bits``)."""

    bits: Bits
    phi: int
    e1: Trie
    e2: E2Type
    tree: LabeledRootedTree
    labels: Dict[int, int]  # graph node -> RetrieveLabel(B^phi)
    root: int  # graph node elected (label 1)

    @property
    def size_bits(self) -> int:
        return len(self.bits)


def canonical_bfs_tree(
    g: PortGraph, root: int, labels: Dict[int, int]
) -> LabeledRootedTree:
    """The paper's canonical BFS tree: the parent of a node u at BFS level
    i+1 is the level-i neighbor reachable through the *smallest port number
    at u*; edges carry the graph's port numbers at both endpoints."""
    dist = g.bfs_distances(root)
    tree_nodes: Dict[int, LabeledRootedTree] = {
        u: LabeledRootedTree(labels[u]) for u in g.nodes()
    }
    for u in g.nodes():
        if u == root:
            continue
        parent_port = None
        for p in range(g.degree(u)):
            v, _ = g.neighbor(u, p)
            if dist[v] == dist[u] - 1:
                parent_port = p
                break
        if parent_port is None:
            raise AdviceError(f"BFS tree: node {u} has no parent (disconnected?)")
        parent, q = g.neighbor(u, parent_port)
        # at the tree edge: port q at the parent, port parent_port at u
        tree_nodes[parent].add_child(q, parent_port, tree_nodes[u])
    return tree_nodes[root]


def compute_advice(g: PortGraph, phi: Optional[int] = None) -> AdviceBundle:
    """Algorithm 5 (ComputeAdvice).

    ``phi`` may be passed if already known (it is recomputed otherwise).
    Raises :class:`~repro.errors.InfeasibleGraphError` on infeasible graphs.
    """
    if phi is None:
        phi = election_index(g)

    levels: List[List[View]] = []
    for depth, level in enumerate(view_levels(g, max_depth=phi)):
        levels.append(level)
        if depth == phi:
            break

    ctx = LabelingContext()
    s1 = sort_views(set(levels[1]))
    ctx.e1 = build_trie(s1, ctx)
    e2: E2Type = []

    for i in range(2, phi + 1):
        # group nodes by the label of their depth-(i-1) view
        groups: Dict[int, List[int]] = {}
        for u in g.nodes():
            j = retrieve_label(levels[i - 1][u], ctx)
            groups.setdefault(j, []).append(u)
        layer_list: List[Tuple[int, Trie]] = []
        for j in sorted(groups):
            distinct = set(levels[i][u] for u in groups[j])
            if len(distinct) > 1:
                trie = build_trie(sort_views(distinct), ctx)
                layer_list.append((j, trie))
        e2.append((i, layer_list))
        ctx.add_layer(i, dict(layer_list))

    labels = {u: retrieve_label(levels[phi][u], ctx) for u in g.nodes()}
    if sorted(labels.values()) != list(range(1, g.n + 1)):
        raise AdviceError(
            "RetrieveLabel did not assign the labels 1..n bijectively: "
            f"got {sorted(labels.values())[:10]}..."
        )
    root = next(u for u, lab in labels.items() if lab == 1)
    tree = canonical_bfs_tree(g, root, labels)

    a1 = concat_bits([encode_trie(ctx.e1), encode_e2(e2)])
    a2 = encode_tree(tree)
    bits = concat_bits([encode_uint(phi), a1, a2])

    return AdviceBundle(
        bits=bits, phi=phi, e1=ctx.e1, e2=e2, tree=tree, labels=labels, root=root
    )


def decode_advice(
    bits: Bits,
) -> Tuple[int, Trie, E2Type, LabeledRootedTree]:
    """Node-side decoding of the oracle's advice string."""
    parts = decode_concat(bits)
    if len(parts) != 3:
        raise AdviceError(
            f"advice must have 3 top-level parts (phi, A1, A2), got {len(parts)}"
        )
    phi = decode_uint(parts[0])
    a1_parts = decode_concat(parts[1])
    if len(a1_parts) != 2:
        raise AdviceError("advice item A1 must contain (bin(E1), bin(E2))")
    e1 = decode_trie(a1_parts[0])
    e2 = decode_e2(a1_parts[1])
    tree = decode_tree(parts[2])
    return phi, e1, e2, tree


def labeling_context_from_advice(e1: Trie, e2: E2Type) -> LabelingContext:
    """Assemble a node-side labeling context from decoded advice."""
    ctx = LabelingContext(e1=e1)
    for depth, layer in e2_as_maps(e2).items():
        ctx.add_layer(depth, layer)
    return ctx


def advice_breakdown(bundle: AdviceBundle) -> Dict[str, int]:
    """Bits per advice component: bin(phi), bin(E1), bin(E2), bin(T).

    The paper's Section 3 narrative quantified: E1+E2 (item A1, the trie
    machinery) is what makes O(n log n) possible — the naive alternative
    inflates item A2 instead.  Components are re-encoded here, so the sum
    differs from ``bundle.size_bits`` only by the outer Concat framing
    (doubling + separators).
    """
    parts = {
        "phi": len(encode_uint(bundle.phi)),
        "E1_trie": len(encode_trie(bundle.e1)),
        "E2_nested_tries": len(encode_e2(bundle.e2)),
        "A2_bfs_tree": len(encode_tree(bundle.tree)),
    }
    parts["total_with_framing"] = bundle.size_bits
    return parts
